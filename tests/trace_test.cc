// Tests for workload trace persistence (CSV round trips, error handling).

#include <gtest/gtest.h>

#include <sstream>

#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace aegaeon {
namespace {

TEST(TraceTest, RoundTripsExactly) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(5);
  auto events = GeneratePoisson(registry, 0.3, 100.0, Dataset::ShareGpt(), 77);
  std::stringstream stream;
  WriteTrace(stream, events);
  std::vector<ArrivalEvent> loaded;
  ASSERT_TRUE(ReadTrace(stream, loaded));
  ASSERT_EQ(loaded.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_NEAR(loaded[i].time, events[i].time, 1e-6);
    EXPECT_EQ(loaded[i].model, events[i].model);
    EXPECT_EQ(loaded[i].prompt_tokens, events[i].prompt_tokens);
    EXPECT_EQ(loaded[i].output_tokens, events[i].output_tokens);
  }
}

TEST(TraceTest, RejectsMissingHeader) {
  std::stringstream stream("1.0,0,10,20\n");
  std::vector<ArrivalEvent> events;
  EXPECT_FALSE(ReadTrace(stream, events));
  EXPECT_TRUE(events.empty());
}

TEST(TraceTest, RejectsMalformedRows) {
  std::stringstream stream("time,model,prompt_tokens,output_tokens\n1.0,0,banana,20\n");
  std::vector<ArrivalEvent> events;
  EXPECT_FALSE(ReadTrace(stream, events));
  EXPECT_TRUE(events.empty());
}

TEST(TraceTest, RejectsNegativeValues) {
  std::stringstream stream("time,model,prompt_tokens,output_tokens\n-1.0,0,10,20\n");
  std::vector<ArrivalEvent> events;
  EXPECT_FALSE(ReadTrace(stream, events));
}

TEST(TraceTest, RejectsNonMonotoneTimestamps) {
  std::stringstream stream(
      "time,model,prompt_tokens,output_tokens\n"
      "5.0,1,10,20\n"
      "1.0,0,30,40\n");
  std::vector<ArrivalEvent> events;
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, events, &error));
  EXPECT_NE(error.find("non-monotone"), std::string::npos) << error;
  EXPECT_NE(error.find("row 3"), std::string::npos) << error;
}

TEST(TraceTest, AcceptsEqualTimestamps) {
  std::stringstream stream(
      "time,model,prompt_tokens,output_tokens\n"
      "1.0,0,10,20\n"
      "1.0,1,30,40\n");
  std::vector<ArrivalEvent> events;
  ASSERT_TRUE(ReadTrace(stream, events));
  ASSERT_EQ(events.size(), 2u);
}

TEST(TraceTest, ReportsMalformedFieldWithMessage) {
  std::stringstream stream("time,model,prompt_tokens,output_tokens\n1.0,0,banana,20\n");
  std::vector<ArrivalEvent> events;
  std::string error;
  EXPECT_FALSE(ReadTrace(stream, events, &error));
  EXPECT_FALSE(error.empty());
}

TEST(TraceTest, EmptyTraceRoundTrips) {
  std::stringstream stream;
  WriteTrace(stream, {});
  std::vector<ArrivalEvent> events = {ArrivalEvent{}};
  ASSERT_TRUE(ReadTrace(stream, events));
  EXPECT_TRUE(events.empty());
}

TEST(TraceTest, FileRoundTrip) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(3);
  auto events = GeneratePoisson(registry, 0.2, 50.0, Dataset::ShareGpt(), 9);
  const std::string path = "/tmp/aegaeon_trace_test.csv";
  ASSERT_TRUE(WriteTraceFile(path, events));
  std::vector<ArrivalEvent> loaded;
  ASSERT_TRUE(ReadTraceFile(path, loaded));
  EXPECT_EQ(loaded.size(), events.size());
  EXPECT_FALSE(ReadTraceFile("/nonexistent/path.csv", loaded));
}

}  // namespace
}  // namespace aegaeon
