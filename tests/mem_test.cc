// Tests for the explicit memory management substrate (§5.2): bump
// allocation, slab allocation, and the host model cache.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "mem/bump_allocator.h"
#include "mem/model_cache.h"
#include "mem/slab_allocator.h"
#include "sim/random.h"

namespace aegaeon {
namespace {

// --- BumpAllocator --------------------------------------------------------

TEST(BumpAllocatorTest, AllocationsAreConsecutiveAndAligned) {
  BumpAllocator bump(1024);
  auto a = bump.Alloc(100, 64);
  auto b = bump.Alloc(100, 64);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 0u);
  EXPECT_EQ(*b, 128u);  // 100 rounded up to the next 64-byte boundary
  EXPECT_EQ(*b % 64, 0u);
}

TEST(BumpAllocatorTest, ExhaustionReturnsNullopt) {
  BumpAllocator bump(256);
  EXPECT_TRUE(bump.Alloc(200, 1).has_value());
  EXPECT_FALSE(bump.Alloc(100, 1).has_value());
  EXPECT_EQ(bump.used(), 200u);
}

TEST(BumpAllocatorTest, ResetIsInstantFullFree) {
  BumpAllocator bump(256);
  bump.Alloc(200, 1);
  bump.Reset();
  EXPECT_EQ(bump.used(), 0u);
  EXPECT_TRUE(bump.Alloc(256, 1).has_value());
  EXPECT_EQ(bump.high_water(), 256u);
}

TEST(BumpAllocatorTest, ResetKeepingFrontModelsPrefetchPromotion) {
  BumpAllocator bump(1000);
  bump.Alloc(400, 1);  // running model
  bump.Alloc(300, 1);  // prefetched model behind it
  // Promote: the prefetched 300 bytes move to the front; rest freed.
  bump.ResetKeepingFront(300);
  EXPECT_EQ(bump.used(), 300u);
  EXPECT_EQ(bump.remaining(), 700u);
}

TEST(BumpAllocatorTest, OverflowNearCapacityIsSafe) {
  BumpAllocator bump(100);
  bump.Alloc(90, 1);
  // aligned offset would exceed capacity; must not wrap.
  EXPECT_FALSE(bump.Alloc(1, 64).has_value());
}

// --- BumpArena --------------------------------------------------------------

TEST(BumpArenaTest, AllocationsAreAlignedAndDistinct) {
  BumpArena arena(256);
  void* a = arena.Allocate(10, 8);
  void* b = arena.Allocate(10, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  // Over-aligned requests are honored on the pointer value itself.
  void* c = arena.Allocate(10, 64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c) % 64, 0u);
  EXPECT_EQ(arena.chunks(), 1u);
}

TEST(BumpArenaTest, GrowsByChunksAndOversizedGetsDedicatedChunk) {
  BumpArena arena(64);
  arena.Allocate(48, 8);
  arena.Allocate(48, 8);  // does not fit chunk 1 -> chunk 2
  EXPECT_EQ(arena.chunks(), 2u);
  void* big = arena.Allocate(1000, 8);  // larger than chunk size
  ASSERT_NE(big, nullptr);
  EXPECT_EQ(arena.chunks(), 3u);
  EXPECT_GE(arena.bytes_reserved(), 64u + 64u + 1000u);
}

TEST(BumpArenaTest, ResetRetainsChunksForReuse) {
  BumpArena arena(128);
  for (int cycle = 0; cycle < 3; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      arena.Allocate(40, 8);
    }
    arena.Reset();
  }
  const uint64_t warm = arena.chunk_allocs();
  EXPECT_EQ(warm, arena.chunks());
  // Steady state: identical cycles never touch the heap again, and the
  // retained chunks are walked in order.
  for (int cycle = 0; cycle < 20; ++cycle) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_NE(arena.Allocate(40, 8), nullptr);
    }
    EXPECT_EQ(arena.bytes_used(), 400u);
    arena.Reset();
    EXPECT_EQ(arena.bytes_used(), 0u);
  }
  EXPECT_EQ(arena.chunk_allocs(), warm);
}

TEST(ArenaAllocatorTest, VectorDrawsFromArenaAndNullArenaFallsBack) {
  BumpArena arena;
  std::vector<int, ArenaAllocator<int>> vec{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 1000; ++i) {
    vec.push_back(i);
  }
  EXPECT_GT(arena.bytes_used(), 1000u * sizeof(int) - 1);  // growth came from the arena
  EXPECT_EQ(vec[999], 999);
  const uint64_t warm = arena.chunk_allocs();
  // clear() keeps capacity: refilling to the same size allocates nothing.
  vec.clear();
  for (int i = 0; i < 1000; ++i) {
    vec.push_back(i);
  }
  EXPECT_EQ(arena.chunk_allocs(), warm);
  // Allocator equality follows the arena, per the STL requirements
  // (rebinding across value types preserves it).
  const ArenaAllocator<int> rebound{ArenaAllocator<long>(&arena)};
  EXPECT_TRUE(ArenaAllocator<int>(&arena) == rebound);
  EXPECT_FALSE(ArenaAllocator<int>(&arena) == ArenaAllocator<int>());
  // A default (null-arena) allocator degrades to the heap and still works.
  std::vector<int, ArenaAllocator<int>> plain;
  for (int i = 0; i < 100; ++i) {
    plain.push_back(i);
  }
  EXPECT_EQ(plain[99], 99);
}

// --- SlabAllocator ----------------------------------------------------------

TEST(SlabAllocatorTest, AllocatesRegisteredShapes) {
  SlabAllocator slabs(1000, 100);
  ASSERT_TRUE(slabs.RegisterShape(0, 30));  // 3 blocks per slab
  auto blocks = slabs.Alloc(0, 4);
  EXPECT_EQ(blocks.size(), 4u);
  EXPECT_EQ(slabs.used_bytes(0), 120u);
  EXPECT_EQ(slabs.held_bytes(0), 200u);  // two slabs
}

TEST(SlabAllocatorTest, RejectsOversizedBlocks) {
  SlabAllocator slabs(1000, 100);
  EXPECT_FALSE(slabs.RegisterShape(0, 101));
  EXPECT_FALSE(slabs.RegisterShape(1, 0));
  EXPECT_TRUE(slabs.RegisterShape(2, 100));
}

TEST(SlabAllocatorTest, AllOrNothingOnExhaustion) {
  SlabAllocator slabs(200, 100);
  slabs.RegisterShape(0, 100);  // 1 block per slab, 2 slabs total
  EXPECT_EQ(slabs.Alloc(0, 3).size(), 0u);
  // The failed allocation rolled back completely.
  EXPECT_EQ(slabs.used_bytes(0), 0u);
  EXPECT_EQ(slabs.free_slabs(), 2u);
  EXPECT_EQ(slabs.Alloc(0, 2).size(), 2u);
}

TEST(SlabAllocatorTest, EmptySlabsAreReclaimedForOtherShapes) {
  SlabAllocator slabs(200, 100);
  slabs.RegisterShape(0, 100);
  slabs.RegisterShape(1, 50);
  auto blocks = slabs.Alloc(0, 2);  // consumes both slabs
  EXPECT_EQ(slabs.Alloc(1, 1).size(), 0u);
  slabs.Free(blocks);
  EXPECT_EQ(slabs.free_slabs(), 2u);
  EXPECT_EQ(slabs.Alloc(1, 4).size(), 4u);  // shape 1 now fits
}

TEST(SlabAllocatorTest, BlocksAreUniqueAcrossShapes) {
  SlabAllocator slabs(10000, 1000);
  slabs.RegisterShape(0, 128);
  slabs.RegisterShape(1, 512);
  std::set<uint64_t> seen;
  auto a = slabs.Alloc(0, 20);
  auto b = slabs.Alloc(1, 10);
  for (const BlockRef& block : a) {
    EXPECT_TRUE(seen.insert(block.Packed()).second);
  }
  for (const BlockRef& block : b) {
    EXPECT_TRUE(seen.insert(block.Packed()).second);
  }
}

TEST(SlabAllocatorTest, FragmentationStatsTrackPeak) {
  SlabAllocator slabs(1000, 100);
  slabs.RegisterShape(0, 40);  // 2 blocks/slab, 20% slack per full slab
  auto blocks = slabs.Alloc(0, 3);  // 2 slabs held, 120 used of 200
  auto stats = slabs.shape_stats(0);
  EXPECT_EQ(stats.peak_held_bytes, 200u);
  EXPECT_EQ(stats.used_at_peak, 120u);
  EXPECT_NEAR(stats.FragmentationAtPeak(), 0.4, 1e-9);
  slabs.Free(blocks);
  EXPECT_EQ(slabs.shape_stats(0).used_bytes, 0u);
  // Peak statistics persist after frees.
  EXPECT_EQ(slabs.shape_stats(0).peak_held_bytes, 200u);
}

// Property test: random alloc/free cycles across several shapes preserve
// the allocator's core invariants.
class SlabPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SlabPropertyTest, InvariantsHoldUnderRandomWorkload) {
  SlabAllocator slabs(64 * 1024, 4096);
  const std::vector<uint64_t> block_sizes = {128, 512, 800, 2048};
  for (size_t s = 0; s < block_sizes.size(); ++s) {
    ASSERT_TRUE(slabs.RegisterShape(static_cast<ShapeClassId>(s), block_sizes[s]));
  }
  Rng rng(GetParam());
  std::vector<std::pair<ShapeClassId, std::vector<BlockRef>>> live;
  std::set<uint64_t> outstanding;
  for (int step = 0; step < 2000; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      ShapeClassId shape = static_cast<ShapeClassId>(rng.UniformInt(block_sizes.size()));
      size_t count = 1 + rng.UniformInt(6);
      auto blocks = slabs.Alloc(shape, count);
      if (!blocks.empty()) {
        for (const BlockRef& block : blocks) {
          // No block is ever handed out twice.
          ASSERT_TRUE(outstanding.insert(block.Packed()).second);
        }
        live.emplace_back(shape, std::move(blocks));
      }
    } else {
      size_t victim = rng.UniformInt(live.size());
      for (const BlockRef& block : live[victim].second) {
        outstanding.erase(block.Packed());
      }
      slabs.Free(live[victim].second);
      live.erase(live.begin() + victim);
    }
    // used <= held, and held never exceeds the arena.
    ASSERT_LE(slabs.total_used_bytes(), slabs.total_held_bytes());
    ASSERT_LE(slabs.total_held_bytes(), 64u * 1024);
  }
  for (auto& [shape, blocks] : live) {
    slabs.Free(blocks);
  }
  EXPECT_EQ(slabs.total_used_bytes(), 0u);
  EXPECT_EQ(slabs.free_slabs(), slabs.total_slabs());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlabPropertyTest, ::testing::Values(1, 2, 3, 42, 1337));

// --- ModelCache -------------------------------------------------------------

TEST(ModelCacheTest, MissThenHit) {
  ModelCache cache(100e9, 10e9);
  auto first = cache.PrepareLoad(7, 30e9);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_DOUBLE_EQ(first.registry_fetch, 3.0);
  cache.Unpin(7);
  auto second = cache.PrepareLoad(7, 30e9);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_DOUBLE_EQ(second.registry_fetch, 0.0);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(ModelCacheTest, LruEviction) {
  ModelCache cache(100e9, 10e9);
  cache.Warm(0, 40e9);
  cache.Warm(1, 40e9);
  cache.Warm(0, 40e9);  // touch 0 -> 1 is now LRU
  cache.Warm(2, 40e9);  // evicts 1
  EXPECT_TRUE(cache.Resident(0));
  EXPECT_FALSE(cache.Resident(1));
  EXPECT_TRUE(cache.Resident(2));
  EXPECT_EQ(cache.evictions(), 1u);
}

TEST(ModelCacheTest, PinnedEntriesSurviveEviction) {
  ModelCache cache(100e9, 10e9);
  cache.PrepareLoad(0, 60e9);  // pinned
  cache.Warm(1, 60e9);         // would need to evict 0, but it's pinned
  EXPECT_TRUE(cache.Resident(0));
  EXPECT_FALSE(cache.Resident(1));
  cache.Unpin(0);
  cache.Warm(1, 60e9);
  EXPECT_TRUE(cache.Resident(1));
  EXPECT_FALSE(cache.Resident(0));
}

TEST(ModelCacheTest, EvictionDemotesToSsdTier) {
  ModelCache cache(100e9, 10e9);
  cache.EnableSsdTier(/*ssd_capacity_bytes=*/200e9, /*ssd_bw_bytes_per_s=*/5e9);
  cache.Warm(0, 80e9);
  cache.Warm(1, 80e9);  // evicts 0 -> SSD
  EXPECT_FALSE(cache.Resident(0));
  EXPECT_TRUE(cache.OnSsd(0));
  // Reload of 0: SSD read (16 s at 5 GB/s), not a registry fetch (8 s at
  // 10 GB/s would be cheaper here, but the point is the path taken).
  auto plan = cache.Warm(0, 80e9);
  EXPECT_FALSE(plan.cache_hit);
  EXPECT_TRUE(plan.ssd_hit);
  EXPECT_DOUBLE_EQ(plan.registry_fetch, 16.0);
  EXPECT_EQ(cache.ssd_hits(), 1u);
}

TEST(ModelCacheTest, SsdTierEvictsLruWhenFull) {
  ModelCache cache(50e9, 10e9);
  cache.EnableSsdTier(100e9, 5e9);
  cache.Warm(0, 40e9);
  cache.Warm(1, 40e9);  // 0 -> SSD
  cache.Warm(2, 40e9);  // 1 -> SSD
  cache.Warm(3, 40e9);  // 2 -> SSD; SSD holds {1, 2}, 0 evicted from SSD
  EXPECT_FALSE(cache.OnSsd(0));
  EXPECT_TRUE(cache.OnSsd(1));
  EXPECT_TRUE(cache.OnSsd(2));
  EXPECT_LE(cache.ssd_used_bytes(), 100e9);
}

TEST(ModelCacheTest, SsdDisabledDropsEvictions) {
  ModelCache cache(100e9, 10e9);
  cache.Warm(0, 80e9);
  cache.Warm(1, 80e9);
  EXPECT_FALSE(cache.OnSsd(0));
  auto plan = cache.Warm(0, 80e9);
  EXPECT_FALSE(plan.ssd_hit);
  EXPECT_DOUBLE_EQ(plan.registry_fetch, 8.0);  // registry path
}

TEST(ModelCacheTest, OversizedLoadStreamsThrough) {
  ModelCache cache(10e9, 10e9);
  auto plan = cache.PrepareLoad(0, 20e9);
  EXPECT_FALSE(plan.cache_hit);
  EXPECT_DOUBLE_EQ(plan.registry_fetch, 2.0);
  EXPECT_FALSE(cache.Resident(0));  // too big to retain
  EXPECT_DOUBLE_EQ(cache.used_bytes(), 0.0);
}

}  // namespace
}  // namespace aegaeon
