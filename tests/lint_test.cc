// Tests for the aegaeon_lint rule engine (src/lint), driven as a library
// over inline fixture snippets: lexer edge cases, every rule's positive /
// negative / suppression behavior, the suppression meta rule, the
// include-graph passes, and the analyzer-level filtering and formatting the
// CLI exposes.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/analyzer.h"
#include "lint/finding.h"
#include "lint/rule.h"
#include "lint/suppression.h"
#include "lint/token.h"

namespace aegaeon {
namespace lint {
namespace {

std::vector<Finding> LintOne(const std::string& path, const std::string& content) {
  return RunLint({FileContent{path, content}}, LintOptions{});
}

int CountRule(const std::vector<Finding>& findings, std::string_view rule) {
  return static_cast<int>(std::count_if(findings.begin(), findings.end(),
                                        [&](const Finding& f) { return f.rule == rule; }));
}

const Finding* FirstOf(const std::vector<Finding>& findings, std::string_view rule) {
  for (const Finding& f : findings) {
    if (f.rule == rule) {
      return &f;
    }
  }
  return nullptr;
}

// --- lexer -----------------------------------------------------------------

TEST(LintLexer, SkipsLineAndBlockComments) {
  LexResult lex = Lex("int a; // std::unordered_map<int,int>\n/* rand() */ int b;\n");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "unordered_map");
    EXPECT_NE(t.text, "rand");
  }
  ASSERT_EQ(lex.comments.size(), 2u);
  EXPECT_FALSE(lex.comments[0].block);
  EXPECT_TRUE(lex.comments[1].block);
}

TEST(LintLexer, StringAndCharLiteralsAreOpaque) {
  // Comment openers and rule triggers inside literals must not leak.
  LexResult lex = Lex(
      "const char* s = \"/* not a comment */ std::rand()\";\n"
      "char q = '\"';\n"
      "int x = rand();\n");
  EXPECT_TRUE(lex.errors.empty());
  int rand_tokens = 0;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokenKind::kIdentifier && t.text == "rand") {
      ++rand_tokens;
      EXPECT_EQ(t.line, 3);
    }
  }
  EXPECT_EQ(rand_tokens, 1);
}

TEST(LintLexer, RawStringsAreOpaque) {
  // ")x" inside the raw string must not close it early; the banned names
  // inside must not tokenize.
  LexResult lex = Lex("auto s = R\"x(std::unordered_map \")not done\" rand())x\"; int y;\n");
  EXPECT_TRUE(lex.errors.empty());
  bool saw_y = false;
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "unordered_map");
    EXPECT_NE(t.text, "rand");
    saw_y = saw_y || t.text == "y";
  }
  EXPECT_TRUE(saw_y);
}

TEST(LintLexer, LineSpliceExtendsLineComment) {
  // The backslash-newline splices the second line into the comment.
  LexResult lex = Lex("// comment \\\nint hidden = rand();\nint visible;\n");
  for (const Token& t : lex.tokens) {
    EXPECT_NE(t.text, "hidden");
  }
  ASSERT_FALSE(lex.tokens.empty());
  EXPECT_EQ(lex.tokens[0].text, "int");
  EXPECT_EQ(lex.tokens[0].line, 3);
}

TEST(LintLexer, LineSpliceInsideIdentifier) {
  LexResult lex = Lex("ra\\\nnd\n");
  ASSERT_EQ(lex.tokens.size(), 1u);
  EXPECT_EQ(lex.tokens[0].text, "rand");
  EXPECT_EQ(lex.tokens[0].line, 1);
}

TEST(LintLexer, HeaderNameIsOneToken) {
  LexResult lex = Lex("#include <map>\n#include \"core/fleet.h\"\n");
  std::vector<std::string> strings;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokenKind::kString) {
      strings.push_back(t.text);
    }
  }
  ASSERT_EQ(strings.size(), 2u);
  EXPECT_EQ(strings[0], "<map>");
  EXPECT_EQ(strings[1], "\"core/fleet.h\"");
}

TEST(LintLexer, FloatLiteralDetection) {
  LexResult lex = Lex("a 1.0 .5f 1e9 0x1.8p3 1000 0x10 2.f\n");
  std::vector<bool> floats;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokenKind::kNumber) {
      floats.push_back(t.is_float);
    }
  }
  ASSERT_EQ(floats.size(), 7u);
  EXPECT_TRUE(floats[0]);   // 1.0
  EXPECT_TRUE(floats[1]);   // .5f
  EXPECT_TRUE(floats[2]);   // 1e9
  EXPECT_TRUE(floats[3]);   // 0x1.8p3
  EXPECT_FALSE(floats[4]);  // 1000
  EXPECT_FALSE(floats[5]);  // 0x10
  EXPECT_TRUE(floats[6]);   // 2.f
}

TEST(LintLexer, UnterminatedBlockCommentIsAnError) {
  LexResult lex = Lex("int a; /* never closed\nint b;\n");
  EXPECT_FALSE(lex.errors.empty());
}

TEST(LintLexer, MaximalMunchPunctuation) {
  LexResult lex = Lex("a==b!=c->d::e<<f\n");
  std::vector<std::string> puncts;
  for (const Token& t : lex.tokens) {
    if (t.kind == TokenKind::kPunct) {
      puncts.push_back(t.text);
    }
  }
  ASSERT_EQ(puncts.size(), 5u);
  EXPECT_EQ(puncts[0], "==");
  EXPECT_EQ(puncts[1], "!=");
  EXPECT_EQ(puncts[2], "->");
  EXPECT_EQ(puncts[3], "::");
  EXPECT_EQ(puncts[4], "<<");
}

// --- unordered-container ---------------------------------------------------

TEST(LintRules, UnorderedContainerPositive) {
  auto f = LintOne("src/x.cc", "std::unordered_map<int, int> m;\nstd::unordered_set<int> s;\n");
  EXPECT_EQ(CountRule(f, "unordered-container"), 2);
  const Finding* first = FirstOf(f, "unordered-container");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->line, 1);
}

TEST(LintRules, UnorderedContainerNegative) {
  // Unqualified identifiers and ordered containers are fine; so is the name
  // inside a comment or string.
  auto f = LintOne("src/x.cc",
                   "std::map<int, int> m;\n"
                   "int unordered_map = 0;  // std::unordered_map\n"
                   "const char* s = \"std::unordered_set\";\n");
  EXPECT_EQ(CountRule(f, "unordered-container"), 0);
}

TEST(LintRules, UnorderedContainerSuppressedSameLine) {
  auto f = LintOne("src/x.cc",
                   "std::unordered_map<int, int> m;  // LINT-ALLOW(unordered-container): "
                   "build-only scratch, never iterated\n");
  EXPECT_EQ(CountRule(f, "unordered-container"), 0);
  EXPECT_EQ(CountRule(f, "lint-allow"), 0);
}

// --- wall-clock ------------------------------------------------------------

TEST(LintRules, WallClockPositive) {
  auto f = LintOne("src/x.cc",
                   "auto t0 = std::chrono::steady_clock::now();\n"
                   "auto t1 = std::chrono::system_clock::now();\n"
                   "time_t t = time(nullptr);\n");
  EXPECT_EQ(CountRule(f, "wall-clock"), 3);
}

TEST(LintRules, WallClockNegative) {
  // Member calls named `time` and sim-clock reads are not wall-clock reads.
  auto f = LintOne("src/x.cc",
                   "double now = sim.now();\n"
                   "double t = event.time();\n"
                   "auto d = std::chrono::milliseconds(1);\n");
  EXPECT_EQ(CountRule(f, "wall-clock"), 0);
}

TEST(LintRules, WallClockSuppressedOwnLine) {
  auto f = LintOne("src/x.cc",
                   "// LINT-ALLOW(wall-clock): host-side perf counter, never simulated time\n"
                   "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(CountRule(f, "wall-clock"), 0);
}

TEST(LintRules, OwnLineSuppressionCoversOnlyNextTokenLine) {
  auto f = LintOne("src/x.cc",
                   "// LINT-ALLOW(wall-clock): covers only the line below\n"
                   "auto t0 = std::chrono::steady_clock::now();\n"
                   "auto t1 = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(CountRule(f, "wall-clock"), 1);
  const Finding* left = FirstOf(f, "wall-clock");
  ASSERT_NE(left, nullptr);
  EXPECT_EQ(left->line, 3);
}

TEST(LintRules, MultiLineJustificationStillCoversNextCode) {
  // A justification continued over several comment lines covers the first
  // token line below the marker.
  auto f = LintOne("src/x.cc",
                   "// LINT-ALLOW(wall-clock): host-side timing of the solve\n"
                   "// itself; the result never feeds back into simulated state\n"
                   "auto t0 = std::chrono::steady_clock::now();\n");
  EXPECT_EQ(CountRule(f, "wall-clock"), 0);
}

TEST(LintRules, SuppressionOfWrongRuleDoesNotSilence) {
  auto f = LintOne("src/x.cc",
                   "auto t0 = std::chrono::steady_clock::now();  "
                   "// LINT-ALLOW(bare-rand): wrong rule\n");
  EXPECT_EQ(CountRule(f, "wall-clock"), 1);
}

// --- bare-rand -------------------------------------------------------------

TEST(LintRules, BareRandPositive) {
  auto f = LintOne("src/x.cc", "srand(42);\nint x = rand();\n");
  EXPECT_EQ(CountRule(f, "bare-rand"), 2);
}

TEST(LintRules, BareRandNegative) {
  // Member/qualified calls and non-call uses are fine.
  auto f = LintOne("src/x.cc",
                   "int x = gen.rand();\n"
                   "int y = my::rand();\n"
                   "int rand = 3;\n");
  EXPECT_EQ(CountRule(f, "bare-rand"), 0);
}

// --- thread-local ----------------------------------------------------------

TEST(LintRules, ThreadLocalPositive) {
  auto f = LintOne("src/x.cc", "thread_local int counter = 0;\n");
  EXPECT_EQ(CountRule(f, "thread-local"), 1);
}

TEST(LintRules, ThreadLocalNegativeInCommentAndString) {
  auto f = LintOne("src/x.cc",
                   "// thread_local would be wrong here\n"
                   "const char* s = \"thread_local\";\n");
  EXPECT_EQ(CountRule(f, "thread-local"), 0);
}

TEST(LintRules, ThreadLocalSuppressed) {
  auto f = LintOne("src/x.cc",
                   "thread_local int counter = 0;  // LINT-ALLOW(thread-local): "
                   "per-thread scratch, reset on entry\n");
  EXPECT_EQ(CountRule(f, "thread-local"), 0);
}

// --- pointer-keyed-container -----------------------------------------------

TEST(LintRules, PointerKeyedPositive) {
  auto f = LintOne("src/x.cc",
                   "std::map<Foo*, int> a;\n"
                   "std::set<const Block*> b;\n"
                   "std::multimap<Foo*, Bar> c;\n");
  EXPECT_EQ(CountRule(f, "pointer-keyed-container"), 3);
}

TEST(LintRules, PointerKeyedNegative) {
  // Pointer as mapped type (second argument) is fine; so are value keys and
  // nested templates in the key.
  auto f = LintOne("src/x.cc",
                   "std::map<int, Foo*> a;\n"
                   "std::set<uint64_t> b;\n"
                   "std::map<std::pair<int, int>, Foo*> c;\n");
  EXPECT_EQ(CountRule(f, "pointer-keyed-container"), 0);
}

TEST(LintRules, PointerKeyedSetWholeListIsKey) {
  auto f = LintOne("src/x.cc", "std::set<Foo*> s;\n");
  EXPECT_EQ(CountRule(f, "pointer-keyed-container"), 1);
}

TEST(LintRules, PointerKeyedSuppressed) {
  auto f = LintOne("src/x.cc",
                   "std::map<Foo*, int> a;  // LINT-ALLOW(pointer-keyed-container): "
                   "identity lookups only, never iterated\n");
  EXPECT_EQ(CountRule(f, "pointer-keyed-container"), 0);
}

// --- float-equality --------------------------------------------------------

TEST(LintRules, FloatEqualityPositive) {
  auto f = LintOne("src/x.cc",
                   "if (a == 1.0) {}\n"
                   "if (0.0 != b) {}\n"
                   "if (c == 1e-9) {}\n");
  EXPECT_EQ(CountRule(f, "float-equality"), 3);
}

TEST(LintRules, FloatEqualityNegative) {
  // Integer comparison, ordering operators on floats, and variables on both
  // sides are all out of scope.
  auto f = LintOne("src/x.cc",
                   "if (a == 1) {}\n"
                   "if (a <= 1.0) {}\n"
                   "if (a == b) {}\n");
  EXPECT_EQ(CountRule(f, "float-equality"), 0);
}

TEST(LintRules, FloatEqualitySuppressed) {
  auto f = LintOne("src/x.cc",
                   "if (rate == 0.0) {}  // LINT-ALLOW(float-equality): exact zero sentinel\n");
  EXPECT_EQ(CountRule(f, "float-equality"), 0);
}

// --- thread-sleep ----------------------------------------------------------

TEST(LintRules, ThreadSleepPositive) {
  auto f = LintOne("src/x.cc",
                   "std::this_thread::sleep_for(std::chrono::milliseconds(1));\n"
                   "usleep(100);\n");
  EXPECT_EQ(CountRule(f, "thread-sleep"), 2);
}

TEST(LintRules, ThreadSleepExemptInThreadPool) {
  auto f = LintOne("src/sim/thread_pool.cc",
                   "std::this_thread::sleep_for(std::chrono::milliseconds(1));\n");
  EXPECT_EQ(CountRule(f, "thread-sleep"), 0);
}

TEST(LintRules, ThreadSleepNegativeMemberSleep) {
  // A member function named `sleep` is not the libc call.
  auto f = LintOne("src/x.cc", "device.sleep();\n");
  EXPECT_EQ(CountRule(f, "thread-sleep"), 0);
}

// --- include-guard ---------------------------------------------------------

TEST(LintRules, IncludeGuardMissing) {
  auto f = LintOne("src/core/a.h", "int x;\n");
  EXPECT_EQ(CountRule(f, "include-guard"), 1);
}

TEST(LintRules, IncludeGuardPragmaOnce) {
  auto f = LintOne("src/core/a.h", "#pragma once\nint x;\n");
  EXPECT_EQ(CountRule(f, "include-guard"), 0);
}

TEST(LintRules, IncludeGuardIfndefDefinePair) {
  auto f = LintOne("src/core/a.h", "#ifndef CORE_A_H_\n#define CORE_A_H_\nint x;\n#endif\n");
  EXPECT_EQ(CountRule(f, "include-guard"), 0);
}

TEST(LintRules, IncludeGuardMismatchedNames) {
  auto f = LintOne("src/core/a.h", "#ifndef CORE_A_H_\n#define CORE_B_H_\nint x;\n#endif\n");
  EXPECT_EQ(CountRule(f, "include-guard"), 1);
}

TEST(LintRules, IncludeGuardEmptyHeaderSkipped) {
  auto f = LintOne("src/core/a.h", "// only a comment\n");
  EXPECT_EQ(CountRule(f, "include-guard"), 0);
}

TEST(LintRules, IncludeGuardNotAppliedToCc) {
  auto f = LintOne("src/core/a.cc", "int x;\n");
  EXPECT_EQ(CountRule(f, "include-guard"), 0);
}

// --- include-cycle ---------------------------------------------------------

TEST(LintRules, IncludeCycleDetected) {
  std::vector<FileContent> files = {
      {"src/core/a.h", "#pragma once\n#include \"core/b.h\"\nint a;\n"},
      {"src/core/b.h", "#pragma once\n#include \"core/a.h\"\nint b;\n"},
  };
  auto f = RunLint(files, LintOptions{});
  EXPECT_EQ(CountRule(f, "include-cycle"), 1);
  const Finding* cyc = FirstOf(f, "include-cycle");
  ASSERT_NE(cyc, nullptr);
  EXPECT_NE(cyc->message.find("core/a.h"), std::string::npos);
  EXPECT_NE(cyc->message.find("core/b.h"), std::string::npos);
}

TEST(LintRules, IncludeCycleSelfLoop) {
  std::vector<FileContent> files = {
      {"src/core/a.h", "#pragma once\n#include \"core/a.h\"\n"},
  };
  auto f = RunLint(files, LintOptions{});
  EXPECT_EQ(CountRule(f, "include-cycle"), 1);
}

TEST(LintRules, IncludeAcyclicChainClean) {
  std::vector<FileContent> files = {
      {"src/core/a.h", "#pragma once\n#include \"core/b.h\"\nint a;\n"},
      {"src/core/b.h", "#pragma once\n#include \"core/c.h\"\nint b;\n"},
      {"src/core/c.h", "#pragma once\nint c;\n"},
      {"src/core/use.cc", "#include \"core/a.h\"\n"},
  };
  auto f = RunLint(files, LintOptions{});
  EXPECT_EQ(CountRule(f, "include-cycle"), 0);
}

TEST(LintRules, IncludeCycleIgnoresUnknownTargets) {
  // Includes of files outside the analyzed set (system or third-party) are
  // not edges.
  std::vector<FileContent> files = {
      {"src/core/a.h", "#pragma once\n#include <vector>\n#include \"elsewhere/x.h\"\n"},
  };
  auto f = RunLint(files, LintOptions{});
  EXPECT_EQ(CountRule(f, "include-cycle"), 0);
}

// --- suppression meta rule -------------------------------------------------

TEST(LintSuppression, BareMarkerIsAFinding) {
  auto f = LintOne("src/x.cc", "int x;  // LINT-ALLOW\n");
  EXPECT_EQ(CountRule(f, "lint-allow"), 1);
}

TEST(LintSuppression, MissingJustificationIsAFinding) {
  auto f = LintOne("src/x.cc", "int x;  // LINT-ALLOW(wall-clock):\n");
  EXPECT_EQ(CountRule(f, "lint-allow"), 1);
}

TEST(LintSuppression, UnknownRuleIsAFinding) {
  auto f = LintOne("src/x.cc", "int x;  // LINT-ALLOW(no-such-rule): because\n");
  EXPECT_EQ(CountRule(f, "lint-allow"), 1);
}

TEST(LintSuppression, ValidMarkerWithoutFindingIsSilent) {
  // A justified marker that suppresses nothing is not itself flagged (it
  // may be guarding against a rule that fires on other platforms' code).
  auto f = LintOne("src/x.cc", "int x;  // LINT-ALLOW(wall-clock): justified\n");
  EXPECT_EQ(CountRule(f, "lint-allow"), 0);
  EXPECT_TRUE(f.empty());
}

TEST(LintSuppression, CollectParsesFields) {
  SourceFile file;
  file.path = "src/x.cc";
  file.lex = Lex("value = now();  // LINT-ALLOW(wall-clock): host perf timing\n");
  std::vector<Finding> meta;
  std::vector<Suppression> sups = CollectSuppressions(file, AllRuleIds(), &meta);
  EXPECT_TRUE(meta.empty());
  ASSERT_EQ(sups.size(), 1u);
  EXPECT_EQ(sups[0].rule, "wall-clock");
  EXPECT_EQ(sups[0].justification, "host perf timing");
  EXPECT_EQ(sups[0].line, 1);
  EXPECT_FALSE(sups[0].own_line);
}

// --- analyzer driver -------------------------------------------------------

TEST(LintAnalyzer, FindingsSortedByLocation) {
  auto f = LintOne("src/x.cc",
                   "int b = rand();\n"
                   "thread_local int a = 0;\n"
                   "int c = rand();\n");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_LE(f[0].line, f[1].line);
  EXPECT_LE(f[1].line, f[2].line);
  EXPECT_EQ(f[0].rule, "bare-rand");
  EXPECT_EQ(f[1].rule, "thread-local");
  EXPECT_EQ(f[2].rule, "bare-rand");
}

TEST(LintAnalyzer, RuleFilterSelectsSingleRule) {
  LintOptions options;
  options.rule_filter = {"thread-local"};
  auto f = RunLint({FileContent{"src/x.cc", "int b = rand();\nthread_local int a = 0;\n"}},
                   options);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "thread-local");
}

TEST(LintAnalyzer, CleanFileYieldsNoFindings) {
  auto f = LintOne("src/x.cc",
                   "#include \"core/fleet.h\"\n"
                   "int Main() { std::map<int, int> m; return static_cast<int>(m.size()); }\n");
  EXPECT_TRUE(f.empty());
}

TEST(LintAnalyzer, FormatTextShape) {
  std::vector<Finding> findings = {
      Finding{"bare-rand", "src/x.cc", 3, 9, "rand(): global PRNG"}};
  std::string text = FormatText(findings);
  EXPECT_NE(text.find("src/x.cc:3:9: [bare-rand] rand(): global PRNG"), std::string::npos);
}

TEST(LintAnalyzer, FormatSarifShape) {
  std::vector<Finding> findings = {
      Finding{"bare-rand", "src/x.cc", 3, 9, "rand(): \"global\" PRNG"}};
  std::string sarif = FormatSarif(findings);
  EXPECT_NE(sarif.find("\"$schema\""), std::string::npos);
  EXPECT_NE(sarif.find("\"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"bare-rand\""), std::string::npos);
  EXPECT_NE(sarif.find("src/x.cc"), std::string::npos);
  // The quote inside the message must be escaped.
  EXPECT_NE(sarif.find("\\\"global\\\""), std::string::npos);
}

TEST(LintAnalyzer, RuleCatalogComplete) {
  std::vector<std::string> ids = AllRuleIds();
  for (std::string_view want :
       {"unordered-container", "wall-clock", "bare-rand", "thread-local",
        "pointer-keyed-container", "float-equality", "thread-sleep", "include-cycle",
        "include-guard", "lint-allow"}) {
    EXPECT_NE(std::find(ids.begin(), ids.end(), want), ids.end()) << want;
  }
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_NE(FindRule("wall-clock"), nullptr);
  EXPECT_EQ(FindRule("lint-allow"), nullptr);  // meta rule: valid id, no Rule object
  EXPECT_EQ(FindRule("no-such-rule"), nullptr);
}

}  // namespace
}  // namespace lint
}  // namespace aegaeon
