// Tests for the overload-aware serving proxy (src/serve): token-bucket and
// fair-queue units, the proxy-disabled bit-identicality contract, goodput
// under overload, failure-retry backoff, and graceful degradation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "analysis/metrics.h"
#include "baselines/serverless_llm.h"
#include "core/cluster.h"
#include "core/config.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "serve/fair_queue.h"
#include "serve/token_bucket.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

// --- TokenBucket --------------------------------------------------------

TEST(TokenBucketTest, RateLimitsAndRefills) {
  TokenBucket bucket(/*rate=*/2.0, /*burst=*/2.0);
  EXPECT_TRUE(bucket.CanConsume(0.0));
  bucket.Consume(0.0);
  EXPECT_TRUE(bucket.CanConsume(0.0));
  bucket.Consume(0.0);
  // Burst exhausted; the next whole token arrives at t = 0.5 (rate 2/s).
  EXPECT_FALSE(bucket.CanConsume(0.0));
  EXPECT_DOUBLE_EQ(bucket.NextAvailable(0.0), 0.5);
  EXPECT_FALSE(bucket.CanConsume(0.49));
  EXPECT_TRUE(bucket.CanConsume(0.5));
  bucket.Consume(0.5);
  EXPECT_FALSE(bucket.CanConsume(0.5));
}

TEST(TokenBucketTest, CapsAtBurstDepth) {
  TokenBucket bucket(/*rate=*/10.0, /*burst=*/3.0);
  // After a long idle stretch only `burst` tokens are stored.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(bucket.CanConsume(100.0));
    bucket.Consume(100.0);
  }
  EXPECT_FALSE(bucket.CanConsume(100.0));
}

TEST(TokenBucketTest, NonPositiveRateIsUnlimited) {
  TokenBucket bucket(/*rate=*/0.0, /*burst=*/1.0);
  EXPECT_TRUE(bucket.unlimited());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(bucket.CanConsume(0.0));
    bucket.Consume(0.0);
  }
  EXPECT_DOUBLE_EQ(bucket.NextAvailable(0.0), 0.0);
}

// --- WeightedFairQueue --------------------------------------------------

TEST(FairQueueTest, InterleavesModelsUnderContention) {
  // Model 0 floods 8 requests before model 1 enqueues 4; SFQ start tags
  // still interleave dispatch rather than draining model 0 first.
  WeightedFairQueue queue(2, /*default_weight=*/1.0);
  std::vector<Request> requests(12);
  for (int i = 0; i < 8; ++i) {
    requests[i].id = i;
    requests[i].model = 0;
    queue.Enqueue(&requests[i], /*cost=*/1.0);
  }
  for (int i = 8; i < 12; ++i) {
    requests[i].id = i;
    requests[i].model = 1;
    queue.Enqueue(&requests[i], /*cost=*/1.0);
  }
  int popped_of_model1 = 0;
  std::vector<ModelId> order;
  auto all = [](ModelId) { return true; };
  for (int i = 0; i < 8; ++i) {
    ModelId m = queue.MinTagModel(all);
    ASSERT_NE(m, kInvalidModel);
    order.push_back(m);
    queue.PopHead(m);
    popped_of_model1 += m == 1 ? 1 : 0;
  }
  // Within the first 8 dispatches both models got service (model 1 is not
  // stuck behind model 0's backlog).
  EXPECT_GE(popped_of_model1, 3);
  EXPECT_LE(popped_of_model1, 5);
}

TEST(FairQueueTest, WeightsSkewService) {
  // Weight 3 vs 1: over 8 dispatches the heavy model gets ~3x the slots.
  WeightedFairQueue queue(2, /*default_weight=*/1.0);
  queue.SetWeight(0, 3.0);
  std::vector<Request> requests(16);
  for (int i = 0; i < 16; ++i) {
    requests[i].id = i;
    requests[i].model = i < 8 ? 0 : 1;
  }
  for (int i = 0; i < 16; ++i) {
    queue.Enqueue(&requests[i], /*cost=*/1.0);
  }
  int heavy = 0;
  auto all = [](ModelId) { return true; };
  for (int i = 0; i < 8; ++i) {
    ModelId m = queue.MinTagModel(all);
    queue.PopHead(m);
    heavy += m == 0 ? 1 : 0;
  }
  EXPECT_GE(heavy, 5);
}

TEST(FairQueueTest, EvictsLowestPriorityYoungestFirst) {
  WeightedFairQueue queue(1, 1.0);
  std::vector<Request> requests(3);
  for (int i = 0; i < 3; ++i) {
    requests[i].id = i;
    requests[i].model = 0;
    requests[i].arrival = static_cast<double>(i);
  }
  requests[0].priority = 1;
  requests[1].priority = 0;
  requests[2].priority = 0;
  for (auto& r : requests) queue.Enqueue(&r, 1.0);
  // Ties on priority 0 break toward the youngest arrival (request 2).
  EXPECT_EQ(queue.PeekLowestPriority()->id, 2u);
  EXPECT_EQ(queue.EvictLowestPriority()->id, 2u);
  EXPECT_EQ(queue.EvictLowestPriority()->id, 1u);
  EXPECT_EQ(queue.EvictLowestPriority()->id, 0u);
  EXPECT_TRUE(queue.empty());
}

// --- Proxy-disabled bit-identicality ------------------------------------

// Golden metrics captured from the pre-proxy seed tree on the identical
// scenario. The proxy must be a strict no-op when disabled: any drift here
// means the arrival path changed.
TEST(ServeRegressionTest, ProxyDisabledBitIdenticalToSeed) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  auto trace = GeneratePoisson(registry, 0.05, 120.0, Dataset::ShareGpt(), 7);
  ASSERT_EQ(trace.size(), 37u);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  ASSERT_FALSE(config.proxy.enabled);  // default: disabled
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);

  EXPECT_EQ(metrics.tokens_total, 8379);
  EXPECT_EQ(metrics.tokens_met, 8379);
  EXPECT_EQ(metrics.completed_requests, 37u);
  EXPECT_DOUBLE_EQ(metrics.horizon, 118.90224475669471);
  double ttft_sum = 0.0;
  for (double t : metrics.ttft_samples) ttft_sum += t;
  EXPECT_DOUBLE_EQ(ttft_sum, 18.798403898487031);
  EXPECT_DOUBLE_EQ(metrics.breakdown.decode_exec, 101.32023886797782);
  // No proxy artifacts leak into a disabled run.
  EXPECT_EQ(cluster.proxy(), nullptr);
  EXPECT_EQ(metrics.rejected_requests, 0u);
  EXPECT_EQ(metrics.shed_requests, 0u);
  EXPECT_EQ(metrics.timed_out_requests, 0u);
  EXPECT_EQ(metrics.retry_attempts, 0u);
  for (const Request& r : cluster.requests()) {
    EXPECT_EQ(r.proxy_outcome, ProxyOutcome::kNone);
  }
}

// --- Overload behavior ---------------------------------------------------

// A trace far past the small pool's capacity: without the proxy everything
// is admitted and nearly everything misses; with it, admission control
// sheds hopeless work and the admitted remainder meets SLO.
std::vector<ArrivalEvent> OverloadTrace(const ModelRegistry& registry) {
  return GenerateBursty(registry, /*base_rps=*/0.5, /*burst_multiplier=*/6.0,
                        /*mean_calm=*/30.0, /*mean_burst=*/15.0, /*horizon=*/120.0,
                        Dataset::ShareGpt(), /*seed=*/2025);
}

// Aegaeon's token-level scheduling absorbs far more load than the
// baselines, so its overload tests need a much hotter trace (many models
// forcing switches, high per-model rate).
std::vector<ArrivalEvent> HeavyOverloadTrace(const ModelRegistry& registry) {
  return GenerateBursty(registry, /*base_rps=*/1.0, /*burst_multiplier=*/8.0,
                        /*mean_calm=*/30.0, /*mean_burst=*/15.0, /*horizon=*/120.0,
                        Dataset::ShareGpt(), /*seed=*/2025);
}

ProxyPolicy TestPolicy() {
  ProxyPolicy policy;
  policy.enabled = true;
  return policy;
}

TEST(ServeOverloadTest, ProxyImprovesAegaeonGoodput) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = HeavyOverloadTrace(registry);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 2;

  AegaeonCluster baseline(config, registry, GpuSpec::H800());
  RunMetrics off = baseline.Run(trace);

  config.proxy = TestPolicy();
  AegaeonCluster proxied(config, registry, GpuSpec::H800());
  RunMetrics on = proxied.Run(trace);

  EXPECT_GT(on.Goodput(), off.Goodput());
  // The proxy actually exercised overload control.
  EXPECT_GT(on.rejected_requests + on.shed_requests + on.timed_out_requests, 0u);
  // Every admitted request ran to completion (dropped ones never started).
  for (const Request& r : proxied.requests()) {
    if (r.proxy_outcome == ProxyOutcome::kNone) {
      EXPECT_TRUE(r.finished());
    } else {
      EXPECT_EQ(r.generated, 0);
    }
  }
}

TEST(ServeOverloadTest, ProxyImprovesServerlessGoodput) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  auto trace = OverloadTrace(registry);
  ServerlessLlmConfig config;
  config.gpus = 3;

  ServerlessLlmCluster baseline(config, registry, GpuSpec::H800());
  RunMetrics off = baseline.Run(trace);

  config.proxy = TestPolicy();
  ServerlessLlmCluster proxied(config, registry, GpuSpec::H800());
  RunMetrics on = proxied.Run(trace);

  EXPECT_GT(on.Goodput(), off.Goodput());
  EXPECT_GT(on.rejected_requests + on.shed_requests + on.timed_out_requests, 0u);
}

TEST(ServeOverloadTest, FailureDuringBurstRetriesWithBackoff) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  auto trace = OverloadTrace(registry);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  config.proxy = TestPolicy();

  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  // Knock out one of two prefill instances mid-trace: its queued/in-flight
  // requests are displaced and must re-enter through the backoff path.
  cluster.ScheduleFailure(/*prefill_partition=*/true, /*index=*/0, /*when=*/20.0,
                          /*downtime=*/15.0);
  RunMetrics metrics = cluster.Run(trace);

  ASSERT_NE(cluster.proxy(), nullptr);
  EXPECT_GT(cluster.proxy()->stats().retries, 0u);
  EXPECT_GT(metrics.retry_attempts, 0u);
  // Displaced-but-admitted requests still run to completion after backoff.
  for (const Request& r : cluster.requests()) {
    if (r.proxy_outcome == ProxyOutcome::kNone) {
      EXPECT_TRUE(r.finished()) << "request " << r.id << " never completed";
    }
  }
}

TEST(ServeOverloadTest, DegradationCapsOutputsUnderSustainedOverload) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = HeavyOverloadTrace(registry);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 2;
  config.proxy = TestPolicy();
  config.proxy.overload_window = 1.0;
  config.proxy.degraded_max_output_tokens = 32;

  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);

  EXPECT_GT(metrics.degraded_requests, 0u);
  for (const Request& r : cluster.requests()) {
    if (r.degraded) {
      EXPECT_LE(r.output_tokens, 32);
      EXPECT_TRUE(r.finished());
    }
  }
}

TEST(ServeOverloadTest, ProxyRunsAreDeterministic) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  auto trace = OverloadTrace(registry);
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 2;
  config.proxy = TestPolicy();

  AegaeonCluster a(config, registry, GpuSpec::H800());
  RunMetrics ma = a.Run(trace);
  AegaeonCluster b(config, registry, GpuSpec::H800());
  RunMetrics mb = b.Run(trace);

  EXPECT_EQ(ma.tokens_met, mb.tokens_met);
  EXPECT_EQ(ma.completed_requests, mb.completed_requests);
  EXPECT_EQ(ma.rejected_requests, mb.rejected_requests);
  EXPECT_EQ(ma.shed_requests, mb.shed_requests);
  EXPECT_EQ(ma.timed_out_requests, mb.timed_out_requests);
  EXPECT_DOUBLE_EQ(ma.horizon, mb.horizon);
}

}  // namespace
}  // namespace aegaeon
