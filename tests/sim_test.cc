// Unit tests for the discrete-event simulation core.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/simulator.h"

namespace aegaeon {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(3.0, [&] { order.push_back(3); });
  queue.Push(1.0, [&] { order.push_back(1); });
  queue.Push(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) {
    queue.PopAndRun();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimestampFiresFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) {
    queue.PopAndRun();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue queue;
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  queue.Push(7.5, [] {});
  queue.Push(2.5, [] {});
  EXPECT_DOUBLE_EQ(queue.NextTime(), 2.5);
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue queue;
  bool fired = false;
  EventId id = queue.Push(1.0, [&] { fired = true; });
  queue.Push(2.0, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_DOUBLE_EQ(queue.NextTime(), 2.0);
  queue.PopAndRun();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, DoubleCancelFails) {
  EventQueue queue;
  EventId id = queue.Push(1.0, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(9999));
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> seen;
  sim.At(2.0, [&] { seen.push_back(sim.Now()); });
  sim.At(1.0, [&] {
    seen.push_back(sim.Now());
    sim.After(0.5, [&] { seen.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0], 1.0);
  EXPECT_DOUBLE_EQ(seen[1], 1.5);
  EXPECT_DOUBLE_EQ(seen[2], 2.0);
}

TEST(SimulatorTest, SchedulingInThePastClampsToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.At(5.0, [&] {
    sim.At(1.0, [&] { fired_at = sim.Now(); });  // "in the past"
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.At(static_cast<double>(i), [&] { ++fired; });
  }
  uint64_t processed = sim.RunUntil(5.0);
  EXPECT_EQ(processed, 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
  EXPECT_TRUE(sim.pending());
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextU64() == b.NextU64());
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, LogNormalMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    sum += rng.LogNormal(1.0, 0.5);
  }
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  EXPECT_NEAR(sum / n, std::exp(1.125), 0.03);
}

TEST(RngTest, PoissonMean) {
  Rng rng(19);
  for (double mean : {0.5, 4.0, 30.0, 120.0}) {
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.Poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.02) << "mean=" << mean;
  }
}

TEST(ZipfSamplerTest, PmfSumsToOneAndDecreases) {
  ZipfSampler zipf(100, 1.5);
  double total = 0.0;
  for (size_t k = 0; k < 100; ++k) {
    total += zipf.Pmf(k);
    if (k > 0) {
      EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SampleFrequenciesTrackPmf) {
  ZipfSampler zipf(10, 1.2);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
  }
}

TEST(PoissonProcessTest, ArrivalsAreMonotoneAndRateCorrect) {
  PoissonProcess process(2.0, 31);
  std::vector<double> arrivals = process.ArrivalsUntil(10000.0);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
  EXPECT_NEAR(static_cast<double>(arrivals.size()) / 10000.0, 2.0, 0.1);
}

}  // namespace
}  // namespace aegaeon
