// Unit tests for the discrete-event simulation core.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "baselines/muxserve.h"
#include "baselines/serverless_llm.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "sim/callback.h"
#include "sim/event_queue.h"
#include "sim/parallel_sweep.h"
#include "sim/random.h"
#include "sim/simulator.h"
#include "sim/thread_pool.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(3.0, [&] { order.push_back(3); });
  queue.Push(1.0, [&] { order.push_back(1); });
  queue.Push(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) {
    queue.PopAndRun();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameTimestampFiresFifo) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.Push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) {
    queue.PopAndRun();
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[i], i);
  }
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue queue;
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  queue.Push(7.5, [] {});
  queue.Push(2.5, [] {});
  EXPECT_DOUBLE_EQ(queue.NextTime(), 2.5);
}

// Satellite coverage for the fleet's idle-skip probe: NextTime must be
// right when the queue is empty, when the front is a tombstone, and after
// the amortized compaction pass has rebuilt the heap.
TEST(EventQueueTest, NextTimeSkipsTombstonesAndSurvivesCompaction) {
  EventQueue queue;
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  // Front-of-heap tombstones: cancelling the earliest events must expose
  // the first live one (and reclaim the tombstones as a side effect).
  EventId first = queue.Push(1.0, [] {});
  EventId second = queue.Push(2.0, [] {});
  queue.Push(3.0, [] {});
  EXPECT_TRUE(queue.Cancel(first));
  EXPECT_TRUE(queue.Cancel(second));
  EXPECT_DOUBLE_EQ(queue.NextTime(), 3.0);
  EXPECT_EQ(queue.heap_size(), 1u);  // tombstones reclaimed by the read
  queue.PopAndRun();
  EXPECT_EQ(queue.NextTime(), kTimeNever);
  // Compaction path: enough mid-heap cancellations to trigger the rebuild
  // (heap >= 64 entries, tombstones > half). The earliest survivor must
  // still be reported afterwards.
  std::vector<EventId> ids;
  for (int i = 0; i < 128; ++i) {
    ids.push_back(queue.Push(100.0 + i, [] {}));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(queue.Cancel(ids[static_cast<size_t>(i)]));
  }
  EXPECT_LT(queue.heap_size(), 128u);  // compaction ran
  EXPECT_DOUBLE_EQ(queue.NextTime(), 200.0);
  EXPECT_EQ(queue.size(), 28u);
}

TEST(EventQueueTest, MergeRangeLeavesCallerStorage) {
  EventQueue queue;
  queue.Push(5.0, [] {});
  std::vector<int> fired;
  std::vector<EventQueue::Pending> scratch;
  scratch.push_back({1.0, EventCallback([&] { fired.push_back(1); })});
  scratch.push_back({1.0, EventCallback([&] { fired.push_back(2); })});
  scratch.push_back({9.0, EventCallback([&] { fired.push_back(3); })});
  const size_t capacity = scratch.capacity();
  queue.Merge(scratch.data(), scratch.size());
  // The storage (and its capacity) stays with the caller for reuse; only
  // the callbacks moved out.
  EXPECT_EQ(scratch.size(), 3u);
  EXPECT_EQ(scratch.capacity(), capacity);
  EXPECT_EQ(queue.size(), 4u);
  EXPECT_DOUBLE_EQ(queue.PopAndRun(), 1.0);
  EXPECT_DOUBLE_EQ(queue.PopAndRun(), 1.0);
  ASSERT_EQ(fired.size(), 2u);  // FIFO among equal timestamps
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 2);
}

TEST(SimulatorTest, NextEventTimeTracksQueue) {
  Simulator sim;
  EXPECT_EQ(sim.NextEventTime(), kTimeNever);
  EventId id = sim.At(4.0, [] {});
  sim.At(6.0, [] {});
  EXPECT_DOUBLE_EQ(sim.NextEventTime(), 4.0);
  sim.Cancel(id);
  EXPECT_DOUBLE_EQ(sim.NextEventTime(), 6.0);
  sim.Run();
  EXPECT_EQ(sim.NextEventTime(), kTimeNever);
}

TEST(EventQueueTest, CancelSkipsEvent) {
  EventQueue queue;
  bool fired = false;
  EventId id = queue.Push(1.0, [&] { fired = true; });
  queue.Push(2.0, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_DOUBLE_EQ(queue.NextTime(), 2.0);
  queue.PopAndRun();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(queue.empty());
}

TEST(EventQueueTest, DoubleCancelFails) {
  EventQueue queue;
  EventId id = queue.Push(1.0, [] {});
  EXPECT_TRUE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(id));
  EXPECT_FALSE(queue.Cancel(9999));
}

TEST(EventCallbackTest, MoveOnlyCapture) {
  auto value = std::make_unique<int>(41);
  EventCallback cb([v = std::move(value)] { *v += 1; });
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.is_inline());  // unique_ptr fits the SBO buffer
  EventCallback moved = std::move(cb);
  moved();
}

TEST(EventCallbackTest, SmallCaptureStaysInline) {
  int sum = 0;
  // 40 bytes of capture: under the 48-byte SBO budget.
  struct {
    int* out;
    uint64_t pad[4];
  } payload{&sum, {1, 2, 3, 4}};
  EventCallback cb([payload] { *payload.out += static_cast<int>(payload.pad[3]); });
  EXPECT_TRUE(cb.is_inline());
  cb();
  EXPECT_EQ(sum, 4);
}

TEST(EventCallbackTest, OversizeCaptureFallsBackToHeap) {
  int sum = 0;
  struct {
    int* out;
    uint64_t pad[16];  // 136 bytes: over the SBO budget
  } payload{&sum, {}};
  payload.pad[15] = 7;
  EventCallback cb([payload] { *payload.out += static_cast<int>(payload.pad[15]); });
  EXPECT_FALSE(cb.is_inline());
  EventCallback moved = std::move(cb);  // heap case: move transfers the pointer
  moved();
  EXPECT_EQ(sum, 7);
}

TEST(EventCallbackTest, MoveOnlyCaptureThroughQueue) {
  EventQueue queue;
  int result = 0;
  auto value = std::make_unique<int>(10);
  queue.Push(1.0, [v = std::move(value), &result] { result = *v; });
  queue.PopAndRun();
  EXPECT_EQ(result, 10);
}

TEST(EventQueueTest, FifoPreservedAcrossCancellations) {
  // Interleave cancellations with same-timestamp pushes: survivors must
  // still fire in scheduling order after the tombstone rework.
  EventQueue queue;
  std::vector<int> order;
  std::vector<EventId> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(queue.Push(5.0, [&order, i] { order.push_back(i); }));
  }
  for (int i = 0; i < 64; i += 3) {
    EXPECT_TRUE(queue.Cancel(ids[i]));
  }
  while (!queue.empty()) {
    queue.PopAndRun();
  }
  std::vector<int> expected;
  for (int i = 0; i < 64; ++i) {
    if (i % 3 != 0) {
      expected.push_back(i);
    }
  }
  EXPECT_EQ(order, expected);
}

TEST(EventQueueTest, CancelAfterFireFails) {
  EventQueue queue;
  EventId id = queue.Push(1.0, [] {});
  queue.PopAndRun();
  // The slot generation was bumped when the event fired; the stale handle
  // must be rejected (the old implementation accepted it and leaked).
  EXPECT_FALSE(queue.Cancel(id));
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.size(), 0u);
}

TEST(EventQueueTest, BoundedMemoryOverScheduleCancelCycles) {
  // 1M schedule/cancel cycles with a few live events: tombstones must be
  // reclaimed (amortized compaction), not accumulate for the whole horizon.
  EventQueue queue;
  for (int live = 0; live < 4; ++live) {
    queue.Push(1e12 + live, [] {});
  }
  for (int cycle = 0; cycle < 1000000; ++cycle) {
    EventId id = queue.Push(static_cast<double>(cycle), [] {});
    ASSERT_TRUE(queue.Cancel(id));
  }
  EXPECT_EQ(queue.size(), 4u);
  // Heap: live entries plus a bounded tombstone backlog (compaction keeps
  // tombstones <= half the heap, and the heap never exceeds the compaction
  // floor while live_count_ is tiny).
  EXPECT_LE(queue.heap_size(), 128u);
  // Slots are recycled through the free list rather than grown per push.
  EXPECT_LE(queue.slot_capacity(), 128u);
  while (!queue.empty()) {
    queue.PopAndRun();
  }
  EXPECT_EQ(queue.heap_size(), 0u);
}

TEST(EventQueueTest, DrainExtractsLiveEventsInFireOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.Push(3.0, [&] { order.push_back(3); });
  queue.Push(1.0, [&] { order.push_back(1); });
  EventId cancelled = queue.Push(2.0, [&] { order.push_back(2); });
  queue.Push(1.0, [&] { order.push_back(11); });  // same time: FIFO after 1
  ASSERT_TRUE(queue.Cancel(cancelled));
  auto pending = queue.Drain();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.heap_size(), 0u);
  // Tombstones are discarded; live events come back in (when, seq) order —
  // exactly the order PopAndRun would have fired them.
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_EQ(pending[0].when, 1.0);
  EXPECT_EQ(pending[1].when, 1.0);
  EXPECT_EQ(pending[2].when, 3.0);
  for (auto& p : pending) {
    p.cb();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 11, 3}));
}

TEST(EventQueueTest, DrainInvalidatesIdsAcrossEpochRollovers) {
  // Regression: epoch boundaries move events between queues via
  // Drain()/Merge(). A cancellation id issued before a drain must stay
  // invalid afterwards, even when its slot has been reused by merged
  // events — otherwise a cross-epoch Cancel would kill the wrong event.
  EventQueue queue;
  EventId stale = queue.Push(1.0, [] {});
  auto pending = queue.Drain();
  ASSERT_EQ(pending.size(), 1u);
  // The drained slot gets reused immediately by the merge; the pre-drain id
  // must still be rejected (generation bump), not cancel the new tenant.
  queue.Merge(std::move(pending));
  EXPECT_EQ(queue.size(), 1u);
  EXPECT_FALSE(queue.Cancel(stale));
  EXPECT_EQ(queue.size(), 1u);
  // Several rollovers in a row keep the invariant.
  for (int epoch = 0; epoch < 4; ++epoch) {
    EventId id = queue.Push(2.0 + epoch, [] {});
    auto batch = queue.Drain();
    queue.Merge(std::move(batch));
    EXPECT_FALSE(queue.Cancel(id)) << "epoch " << epoch;
  }
  EXPECT_EQ(queue.size(), 5u);
  // The post-merge events are real: they all fire.
  int fired = 0;
  while (!queue.empty()) {
    queue.NextTime();
    queue.PopAndRun();
    ++fired;
  }
  EXPECT_EQ(fired, 5);
}

TEST(EventQueueTest, MergePreservesFifoAgainstExistingEvents) {
  // Merged events must keep their input order on timestamp ties, both among
  // themselves and against events already in the queue (existing first:
  // they were scheduled earlier).
  EventQueue queue;
  std::vector<int> order;
  queue.Push(1.0, [&] { order.push_back(1); });
  std::vector<EventQueue::Pending> batch;
  for (int i = 2; i <= 4; ++i) {
    EventQueue::Pending p;
    p.when = 1.0;
    p.cb = [&order, i] { order.push_back(i); };
    batch.push_back(std::move(p));
  }
  queue.Merge(std::move(batch));
  EXPECT_EQ(queue.size(), 4u);
  while (!queue.empty()) {
    queue.PopAndRun();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(EventQueueTest, MergeSmallBatchIntoLargeHeapSifts) {
  // Exercise both Merge strategies: per-event sift (small batch, large
  // heap) and bulk rebuild (batch rivals the heap).
  EventQueue queue;
  std::vector<double> fired;
  for (int i = 0; i < 100; ++i) {
    double when = static_cast<double>(i) * 2.0;
    queue.Push(when, [&fired, when] { fired.push_back(when); });
  }
  std::vector<EventQueue::Pending> small;
  EventQueue::Pending odd;
  odd.when = 3.0;
  odd.cb = [&fired] { fired.push_back(3.0); };
  small.push_back(std::move(odd));
  queue.Merge(std::move(small));  // 1 vs 100: sift path
  EXPECT_EQ(queue.size(), 101u);
  while (!queue.empty()) {
    queue.PopAndRun();
  }
  ASSERT_EQ(fired.size(), 101u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST(SimulatorTest, ScheduleBatchClampsPastTimestamps) {
  Simulator sim;
  std::vector<double> seen;
  sim.At(5.0, [&] { seen.push_back(5.0); });
  sim.Run();
  EXPECT_EQ(sim.Now(), 5.0);
  std::vector<EventQueue::Pending> batch;
  EventQueue::Pending past;
  past.when = 1.0;  // before Now(): must clamp like At()
  past.cb = [&seen, &sim] { seen.push_back(sim.Now()); };
  batch.push_back(std::move(past));
  sim.ScheduleBatch(std::move(batch));
  sim.Run();
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], 5.0);
}

TEST(ThreadPoolTest, RunsAllTasksAcrossWorkers) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ParallelSweepTest, MapPreservesInputOrder) {
  ParallelSweep sweep(4);
  std::vector<std::function<int()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.push_back([i] {
      if (i % 7 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return i * i;
    });
  }
  std::vector<int> results = sweep.Map(std::move(tasks));
  ASSERT_EQ(results.size(), 64u);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(results[i], i * i);
  }
}

TEST(ParallelSweepTest, ThreadCountEnvOverride) {
  ASSERT_EQ(setenv("AEGAEON_SWEEP_THREADS", "3", 1), 0);
  EXPECT_EQ(ParallelSweep::DefaultThreads(), 3);
  ASSERT_EQ(setenv("AEGAEON_SWEEP_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ParallelSweep::DefaultThreads(), 1);
  ASSERT_EQ(unsetenv("AEGAEON_SWEEP_THREADS"), 0);
}

TEST(ParallelSweepTest, ThreadsForNestedSplitsTheDefaultBudget) {
  // An outer sweep whose tasks each run `intra`-wide inner parallelism
  // (e.g. a sharded fleet) gets the default budget divided by intra,
  // never dropping below one worker.
  ASSERT_EQ(setenv("AEGAEON_SWEEP_THREADS", "8", 1), 0);
  EXPECT_EQ(ParallelSweep::ThreadsForNested(1), 8);
  EXPECT_EQ(ParallelSweep::ThreadsForNested(4), 2);
  EXPECT_EQ(ParallelSweep::ThreadsForNested(8), 1);
  EXPECT_EQ(ParallelSweep::ThreadsForNested(100), 1);
  EXPECT_EQ(ParallelSweep::ThreadsForNested(0), 8);  // non-positive: no split
  ASSERT_EQ(unsetenv("AEGAEON_SWEEP_THREADS"), 0);
}

// --- Determinism under parallelism -------------------------------------

// Full-field comparison of the deterministic parts of RunMetrics. The sim
// perf counters are wall-clock measurements and are deliberately excluded.
void ExpectSameMetrics(const RunMetrics& a, const RunMetrics& b, const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.tokens_total, b.tokens_total);
  EXPECT_EQ(a.tokens_met, b.tokens_met);
  EXPECT_EQ(a.horizon, b.horizon);  // bitwise: same double or bust
  EXPECT_EQ(a.breakdown.prefill_wait, b.breakdown.prefill_wait);
  EXPECT_EQ(a.breakdown.prefill_exec, b.breakdown.prefill_exec);
  EXPECT_EQ(a.breakdown.decode_wait, b.breakdown.decode_wait);
  EXPECT_EQ(a.breakdown.decode_exec, b.breakdown.decode_exec);
  EXPECT_EQ(a.breakdown.control_overhead, b.breakdown.control_overhead);
  EXPECT_EQ(a.breakdown.data_overhead, b.breakdown.data_overhead);
  EXPECT_EQ(a.ttft_samples, b.ttft_samples);
  EXPECT_EQ(a.request_latency_samples, b.request_latency_samples);
  EXPECT_EQ(a.switch_latency_samples, b.switch_latency_samples);
  EXPECT_EQ(a.kv_sync_samples, b.kv_sync_samples);
}

TEST(ParallelSweepTest, SweepMatchesSerialBitIdentically) {
  // A shrunk bench_fig11 sweep: (point x system) pairs run once serially in
  // input order and once through an 8-worker ParallelSweep; every pair's
  // RunMetrics must be bit-identical.
  constexpr double kTestHorizon = 30.0;
  constexpr uint64_t kTestSeed = 2025;
  const std::vector<int> model_counts = {8, 16};

  enum SystemKind { kAegaeon, kServerless, kServerlessPlus, kMuxServe, kSystems };
  auto run_pair = [&](int models, int system) {
    ModelRegistry registry = ModelRegistry::MidSizeMarket(models);
    auto trace =
        GeneratePoisson(registry, 0.1, kTestHorizon, Dataset::ShareGpt(), kTestSeed);
    switch (system) {
      case kAegaeon: {
        AegaeonConfig config;
        config.prefill_instances = 6;
        config.decode_instances = 10;
        AegaeonCluster cluster(config, registry, GpuSpec::H800());
        return cluster.Run(trace);
      }
      case kServerless:
      case kServerlessPlus: {
        ServerlessLlmConfig config;
        config.gpus = 16;
        config.sjf = system == kServerlessPlus;
        ServerlessLlmCluster cluster(config, registry, GpuSpec::H800());
        return cluster.Run(trace);
      }
      default: {
        MuxServeConfig config;
        config.gpus = 16;
        MuxServeCluster cluster(config, registry, GpuSpec::H800());
        return cluster.Run(trace);
      }
    }
  };

  std::vector<RunMetrics> serial;
  std::vector<std::function<RunMetrics()>> tasks;
  for (int models : model_counts) {
    for (int system = 0; system < kSystems; ++system) {
      serial.push_back(run_pair(models, system));
      tasks.push_back([&run_pair, models, system] { return run_pair(models, system); });
    }
  }

  ParallelSweep sweep(8);
  std::vector<RunMetrics> parallel = sweep.Map(std::move(tasks));

  ASSERT_EQ(serial.size(), parallel.size());
  const char* names[] = {"aegaeon", "serverless", "serverless+", "muxserve"};
  for (size_t i = 0; i < serial.size(); ++i) {
    std::string label = std::string(names[i % kSystems]) + " models=" +
                        std::to_string(model_counts[i / kSystems]);
    ExpectSameMetrics(serial[i], parallel[i], label.c_str());
  }
}

TEST(SimulatorTest, ClockAdvancesWithEvents) {
  Simulator sim;
  std::vector<double> seen;
  sim.At(2.0, [&] { seen.push_back(sim.Now()); });
  sim.At(1.0, [&] {
    seen.push_back(sim.Now());
    sim.After(0.5, [&] { seen.push_back(sim.Now()); });
  });
  sim.Run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0], 1.0);
  EXPECT_DOUBLE_EQ(seen[1], 1.5);
  EXPECT_DOUBLE_EQ(seen[2], 2.0);
}

TEST(SimulatorTest, SchedulingInThePastClampsToNow) {
  Simulator sim;
  double fired_at = -1.0;
  sim.At(5.0, [&] {
    sim.At(1.0, [&] { fired_at = sim.Now(); });  // "in the past"
  });
  sim.Run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(SimulatorTest, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.At(static_cast<double>(i), [&] { ++fired; });
  }
  uint64_t processed = sim.RunUntil(5.0);
  EXPECT_EQ(processed, 5u);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.Now(), 5.0);
  EXPECT_TRUE(sim.pending());
  sim.Run();
  EXPECT_EQ(fired, 10);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextU64() == b.NextU64());
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(4.0);
  }
  EXPECT_NEAR(sum / n, 0.25, 0.005);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal(3.0, 2.0);
    sum += x;
    sq += x * x;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.03);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(RngTest, LogNormalMean) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    sum += rng.LogNormal(1.0, 0.5);
  }
  // E[lognormal(mu, sigma)] = exp(mu + sigma^2/2).
  EXPECT_NEAR(sum / n, std::exp(1.125), 0.03);
}

TEST(RngTest, PoissonMean) {
  Rng rng(19);
  for (double mean : {0.5, 4.0, 30.0, 120.0}) {
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.Poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.02) << "mean=" << mean;
  }
}

TEST(ZipfSamplerTest, PmfSumsToOneAndDecreases) {
  ZipfSampler zipf(100, 1.5);
  double total = 0.0;
  for (size_t k = 0; k < 100; ++k) {
    total += zipf.Pmf(k);
    if (k > 0) {
      EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, SampleFrequenciesTrackPmf) {
  ZipfSampler zipf(10, 1.2);
  Rng rng(23);
  std::vector<int> counts(10, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    counts[zipf.Sample(rng)]++;
  }
  for (size_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.Pmf(k), 0.01);
  }
}

TEST(PoissonProcessTest, ArrivalsAreMonotoneAndRateCorrect) {
  PoissonProcess process(2.0, 31);
  std::vector<double> arrivals = process.ArrivalsUntil(10000.0);
  for (size_t i = 1; i < arrivals.size(); ++i) {
    EXPECT_GT(arrivals[i], arrivals[i - 1]);
  }
  EXPECT_NEAR(static_cast<double>(arrivals.size()) / 10000.0, 2.0, 0.1);
}

}  // namespace
}  // namespace aegaeon
