// Tests for the Appendix A.2 latency-model fitting (least squares, feature
// construction, R-squared).

#include <gtest/gtest.h>

#include "hw/gpu_spec.h"
#include "model/latency_fit.h"
#include "model/latency_model.h"
#include "sim/random.h"

namespace aegaeon {
namespace {

TEST(LeastSquaresTest, SolvesExactSystems) {
  // y = 2*x1 - 3*x2 + 5.
  std::vector<std::vector<double>> rows = {
      {1, 0, 1}, {0, 1, 1}, {2, 2, 1}, {5, -1, 1}};
  std::vector<double> y;
  for (const auto& r : rows) {
    y.push_back(2 * r[0] - 3 * r[1] + 5 * r[2]);
  }
  std::vector<double> solution = SolveLeastSquares(rows, y);
  ASSERT_EQ(solution.size(), 3u);
  EXPECT_NEAR(solution[0], 2.0, 1e-9);
  EXPECT_NEAR(solution[1], -3.0, 1e-9);
  EXPECT_NEAR(solution[2], 5.0, 1e-9);
}

TEST(LeastSquaresTest, SingularSystemReturnsEmpty) {
  // Second column is a multiple of the first.
  std::vector<std::vector<double>> rows = {{1, 2}, {2, 4}, {3, 6}};
  std::vector<double> y = {1, 2, 3};
  EXPECT_TRUE(SolveLeastSquares(rows, y).empty());
}

// Generate profiled samples from the analytical model (with optional noise)
// and recover its constants.
class FitRoundTripTest : public ::testing::Test {
 protected:
  ModelSpec spec_ = ModelSpec::Qwen7B();
  LatencyModel latency_{GpuSpec::H800()};
};

TEST_F(FitRoundTripTest, PrefillFitRecoversModelExactly) {
  std::vector<PrefillSample> samples;
  for (int64_t tokens : {64, 128, 256, 512, 1024, 2048, 4096}) {
    PrefillSample sample;
    sample.tokens = tokens;
    sample.sq_sum_tokens = static_cast<double>(tokens) * tokens;
    sample.latency = latency_.PrefillOne(spec_, 1, tokens);
    samples.push_back(sample);
  }
  LatencyFit fit = FitPrefill(spec_, samples);
  ASSERT_TRUE(fit.ok);
  EXPECT_GT(fit.r_squared, 0.9999);
  for (const PrefillSample& sample : samples) {
    EXPECT_NEAR(PredictPrefill(fit, spec_, sample.tokens, sample.sq_sum_tokens), sample.latency,
                sample.latency * 0.01);
  }
}

TEST_F(FitRoundTripTest, NoisyProfilesStillFitAbovePoint9) {
  // The paper: "this modeling achieves an R-squared score of over 0.9".
  Rng rng(7);
  std::vector<PrefillSample> prefill;
  for (int i = 0; i < 60; ++i) {
    int64_t tokens = 32 + static_cast<int64_t>(rng.UniformInt(4000));
    PrefillSample sample;
    sample.tokens = tokens;
    sample.sq_sum_tokens = static_cast<double>(tokens) * tokens;
    sample.latency =
        latency_.PrefillOne(spec_, 1, tokens) * (1.0 + rng.Normal(0.0, 0.05));
    prefill.push_back(sample);
  }
  LatencyFit pf = FitPrefill(spec_, prefill);
  ASSERT_TRUE(pf.ok);
  EXPECT_GT(pf.r_squared, 0.9);

  std::vector<DecodeSample> decode;
  for (int i = 0; i < 60; ++i) {
    int64_t ctx = 128 + static_cast<int64_t>(rng.UniformInt(60000));
    DecodeSample sample;
    sample.context_tokens = ctx;
    sample.latency = latency_.DecodeStep(spec_, 1, ctx) * (1.0 + rng.Normal(0.0, 0.05));
    decode.push_back(sample);
  }
  LatencyFit df = FitDecode(spec_, decode);
  ASSERT_TRUE(df.ok);
  EXPECT_GT(df.r_squared, 0.9);
}

TEST_F(FitRoundTripTest, DecodeFitSeparatesFixedAndKvTerms) {
  std::vector<DecodeSample> samples;
  for (int64_t ctx : {100, 1000, 10000, 50000, 100000}) {
    samples.push_back(DecodeSample{ctx, latency_.DecodeStep(spec_, 1, ctx)});
  }
  LatencyFit fit = FitDecode(spec_, samples);
  ASSERT_TRUE(fit.ok);
  // The fixed part is the weight read + step overhead at zero context.
  EXPECT_NEAR(fit.c_fixed, latency_.DecodeStep(spec_, 1, 0), 1e-6);
  EXPECT_GT(fit.c_attn, 0.0);
}

TEST_F(FitRoundTripTest, TooFewSamplesFail) {
  EXPECT_FALSE(FitPrefill(spec_, {PrefillSample{64, 4096.0, 0.01}}).ok);
  EXPECT_FALSE(FitDecode(spec_, {DecodeSample{64, 0.01}}).ok);
}

}  // namespace
}  // namespace aegaeon
