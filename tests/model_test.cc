// Tests for model specs (Table 1 must reproduce exactly) and the analytical
// latency model (Appendix A.2).

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "hw/gpu_spec.h"
#include "model/latency_model.h"
#include "model/model_spec.h"
#include "model/registry.h"

namespace aegaeon {
namespace {

// --- Table 1: KV cache shape and per-token size -------------------------

struct Table1Row {
  ModelSpec spec;
  std::string shape;
  double kv_kb;
};

class Table1Test : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Test, ShapeAndSizeMatchPaper) {
  const Table1Row& row = GetParam();
  EXPECT_EQ(row.spec.kv_shape().ToString(), row.shape);
  EXPECT_DOUBLE_EQ(row.spec.kv_bytes_per_token() / 1024.0, row.kv_kb);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table1Test,
    ::testing::Values(Table1Row{ModelSpec::Qwen7B(), "(32, 2, 32, 128)", 512.0},
                      Table1Row{ModelSpec::InternLm2_7B(), "(32, 2, 8, 128)", 128.0},
                      Table1Row{ModelSpec::Llama13B(), "(40, 2, 40, 128)", 800.0},
                      Table1Row{ModelSpec::Qwen72B(), "(80, 2, 64, 128)", 2560.0}),
    [](const ::testing::TestParamInfo<Table1Row>& info) {
      std::string name = info.param.spec.name;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) {
          c = '_';
        }
      }
      return name;
    });

TEST(ModelSpecTest, WeightBytesFollowParamCount) {
  EXPECT_DOUBLE_EQ(ModelSpec::Llama13B().weight_bytes(), 26e9);
  EXPECT_DOUBLE_EQ(ModelSpec::Qwen7B().weight_bytes(), 14e9);
  EXPECT_DOUBLE_EQ(ModelSpec::Qwen72B().weight_bytes(), 144e9);
}

TEST(ModelSpecTest, ParamCountApproximatesArchitecture) {
  // L * (4h^2 + 2hm) should be within ~20% of the nominal parameter count
  // (embeddings and norms excluded).
  for (const ModelSpec& spec : {ModelSpec::Qwen7B(), ModelSpec::Llama13B(), ModelSpec::Yi6B(),
                                ModelSpec::Qwen72B(), ModelSpec::InternLm2_7B()}) {
    double h = spec.hidden_size;
    double m = spec.ffn_intermediate;
    double derived = spec.num_layers * (4.0 * h * h + 2.0 * h * m);
    double nominal = spec.params_billion * 1e9;
    EXPECT_GT(derived, nominal * 0.6) << spec.name;
    EXPECT_LT(derived, nominal * 1.4) << spec.name;
  }
}

// --- Latency model -------------------------------------------------------

class LatencyModelTest : public ::testing::Test {
 protected:
  LatencyModel latency_{GpuSpec::H800()};
};

TEST_F(LatencyModelTest, PrefillGrowsWithTokens) {
  ModelSpec spec = ModelSpec::Qwen7B();
  Duration t256 = latency_.PrefillOne(spec, 1, 256);
  Duration t1024 = latency_.PrefillOne(spec, 1, 1024);
  Duration t4096 = latency_.PrefillOne(spec, 1, 4096);
  EXPECT_LT(t256, t1024);
  EXPECT_LT(t1024, t4096);
  // Super-linear at long prompts (attention's t^2 term).
  EXPECT_GT(t4096 / t1024, 3.5);
}

TEST_F(LatencyModelTest, PrefillBatchesRegularlyUnderOneSecond) {
  // §4.2: "the time for a prefill batch regularly falls below one second on
  // contemporary GPUs."
  ModelSpec spec = ModelSpec::Llama13B();
  EXPECT_LT(latency_.Prefill(spec, 1, 8 * 512, 8.0 * 512 * 512), 1.0);
}

TEST_F(LatencyModelTest, DecodeStepIsTensOfMilliseconds) {
  // §4.3: decode step time t "is typically small (e.g., tens of
  // milliseconds)".
  for (const ModelSpec& spec : {ModelSpec::Qwen7B(), ModelSpec::Llama13B()}) {
    Duration step = latency_.DecodeStep(spec, 1, 2048);
    EXPECT_GT(step, 0.005) << spec.name;
    EXPECT_LT(step, 0.050) << spec.name;
  }
}

TEST_F(LatencyModelTest, DecodeGrowsWithContext) {
  ModelSpec spec = ModelSpec::Qwen7B();
  EXPECT_LT(latency_.DecodeStep(spec, 1, 1000), latency_.DecodeStep(spec, 1, 100000));
}

TEST_F(LatencyModelTest, TensorParallelismSpeedsUpBothPhases) {
  ModelSpec spec = ModelSpec::Qwen72B();
  EXPECT_GT(latency_.PrefillOne(spec, 1, 1024), latency_.PrefillOne(spec, 4, 1024));
  EXPECT_GT(latency_.DecodeStep(spec, 1, 1024), latency_.DecodeStep(spec, 4, 1024));
  EXPECT_GT(latency_.SwitchLoad(spec, 1), latency_.SwitchLoad(spec, 4));
}

TEST_F(LatencyModelTest, OptimizedSwitchLoadsAreSubSecond) {
  // §5.2: optimized model loading comes in "under one second" for the
  // 6-14B market on the H800 testbed.
  for (const ModelSpec& spec : {ModelSpec::Qwen7B(), ModelSpec::Llama13B(),
                                ModelSpec::Qwen14B(), ModelSpec::Yi6B()}) {
    EXPECT_LT(latency_.SwitchLoad(spec, 1), 1.0) << spec.name;
    EXPECT_GT(latency_.SwitchLoad(spec, 1), 0.1) << spec.name;
  }
}

TEST_F(LatencyModelTest, NaiveLoadMatchesFigure7) {
  // Figure 7: loading LLaMA-13B at TP=2 via the unoptimized path takes
  // ~4.6 s at the measured 2.83 GB/s.
  EXPECT_NEAR(latency_.NaiveLoad(ModelSpec::Llama13B(), 2, 2.83e9), 4.59, 0.05);
}

// --- Registry -------------------------------------------------------------

TEST(ModelRegistryTest, MidSizeMarketCyclesPresets) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(14);
  EXPECT_EQ(registry.size(), 14u);
  for (ModelId id = 0; id < 14; ++id) {
    const DeployedModel& model = registry.Get(id);
    EXPECT_EQ(model.id, id);
    EXPECT_EQ(model.tp, 1);
    EXPECT_GE(model.spec.params_billion, 6.0);
    EXPECT_LE(model.spec.params_billion, 14.0);
  }
  // Names are unique.
  EXPECT_NE(registry.Get(0).spec.name, registry.Get(6).spec.name);
}

TEST(ModelRegistryTest, LargeMarketUsesTp4) {
  ModelRegistry registry = ModelRegistry::LargeModelMarket(4);
  for (const DeployedModel& model : registry.models()) {
    EXPECT_EQ(model.tp, 4);
    EXPECT_DOUBLE_EQ(model.spec.params_billion, 72.0);
    EXPECT_DOUBLE_EQ(model.shard_bytes(), 36e9);
  }
}

TEST(ModelRegistryTest, SloPropagates) {
  SloSpec strict = SloSpec::Chatbot().Scaled(0.2);
  ModelRegistry registry = ModelRegistry::MidSizeMarket(3, strict);
  EXPECT_DOUBLE_EQ(registry.Get(1).slo.ttft, 2.0);
  EXPECT_NEAR(registry.Get(1).slo.tbt, 0.020, 1e-12);
}

TEST(ModelRegistryTest, MixedSloMarketAlternatesTiers) {
  SloSpec a = SloSpec::Chatbot();
  SloSpec b{3.0, 0.05};
  ModelRegistry registry = ModelRegistry::MixedSloMarket(6, a, b);
  for (ModelId id = 0; id < 6; ++id) {
    const SloSpec& slo = registry.Get(id).slo;
    if (id % 2 == 0) {
      EXPECT_DOUBLE_EQ(slo.ttft, a.ttft) << id;
    } else {
      EXPECT_DOUBLE_EQ(slo.tbt, b.tbt) << id;
    }
  }
}

TEST(SloSpecTest, DeadlinesAreAnchoredAtArrival) {
  SloSpec slo{10.0, 0.1};
  EXPECT_DOUBLE_EQ(slo.DeadlineFor(5.0, 0), 15.0);
  EXPECT_DOUBLE_EQ(slo.DeadlineFor(5.0, 10), 16.0);
}

}  // namespace
}  // namespace aegaeon
