// Tests for the sharded fleet simulation (core/fleet.h, sim/sharded_sim.h,
// sim/mailbox.h): conservative-sync determinism, serial equivalence, load
// balancing, and the SimSan per-cell audit.

#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.h"
#include "core/fleet.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "sim/mailbox.h"
#include "sim/sharded_sim.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

AegaeonConfig SmallCell() {
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 2;
  return config;
}

std::vector<ArrivalEvent> FleetTrace(const ModelRegistry& registry, double rps, double horizon,
                                     uint64_t seed = 7) {
  return GeneratePoisson(registry, rps, horizon, Dataset::ShareGpt(), seed);
}

// Everything that makes two runs "the same results": full bitwise equality
// of the simulated outputs. Host-measured values (sim/shard_sim wall
// clocks) are deliberately excluded.
void ExpectBitIdentical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.tokens_total, b.tokens_total);
  EXPECT_EQ(a.tokens_met, b.tokens_met);
  EXPECT_EQ(a.horizon, b.horizon);  // exact: same double or bust
  EXPECT_EQ(a.rejected_requests, b.rejected_requests);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.slo_good_requests, b.slo_good_requests);
  EXPECT_EQ(a.breakdown.prefill_wait, b.breakdown.prefill_wait);
  EXPECT_EQ(a.breakdown.prefill_exec, b.breakdown.prefill_exec);
  EXPECT_EQ(a.breakdown.decode_wait, b.breakdown.decode_wait);
  EXPECT_EQ(a.breakdown.decode_exec, b.breakdown.decode_exec);
  EXPECT_EQ(a.breakdown.control_overhead, b.breakdown.control_overhead);
  EXPECT_EQ(a.breakdown.data_overhead, b.breakdown.data_overhead);
  ASSERT_EQ(a.ttft_samples.size(), b.ttft_samples.size());
  for (size_t i = 0; i < a.ttft_samples.size(); ++i) {
    EXPECT_EQ(a.ttft_samples[i], b.ttft_samples[i]) << "ttft sample " << i;
  }
  ASSERT_EQ(a.request_latency_samples.size(), b.request_latency_samples.size());
  for (size_t i = 0; i < a.request_latency_samples.size(); ++i) {
    EXPECT_EQ(a.request_latency_samples[i], b.request_latency_samples[i]) << "latency " << i;
  }
  ASSERT_EQ(a.switch_latency_samples.size(), b.switch_latency_samples.size());
  for (size_t i = 0; i < a.switch_latency_samples.size(); ++i) {
    EXPECT_EQ(a.switch_latency_samples[i], b.switch_latency_samples[i]) << "switch " << i;
  }
  EXPECT_EQ(a.sim.events_processed, b.sim.events_processed);
}

TEST(MailboxTest, CollectOrdersByTimeSourceSeq) {
  EpochMailboxes<int> boxes(3);
  boxes.Post(1, 0, 5.0, 10);
  boxes.Post(0, 1, 5.0, 20);   // same time, lower source -> first
  boxes.Post(2, 2, 1.0, 30);   // earliest time -> very first
  boxes.Post(0, 1, 5.0, 40);   // same (time, source), later seq -> after 20
  boxes.Post(boxes.Dispatcher(), 0, 5.0, 50);  // dispatcher is the highest source id
  auto events = boxes.Collect();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].payload, 30);
  EXPECT_EQ(events[1].payload, 20);
  EXPECT_EQ(events[2].payload, 40);
  EXPECT_EQ(events[3].payload, 10);
  EXPECT_EQ(events[4].payload, 50);
  EXPECT_TRUE(boxes.empty());
  // A second collect is empty, and posting after a collect works.
  EXPECT_TRUE(boxes.Collect().empty());
  boxes.Post(0, 0, 9.0, 60);
  EXPECT_FALSE(boxes.empty());
  EXPECT_EQ(boxes.Collect().size(), 1u);
}

TEST(ConservativeLookaheadTest, MinOfEnabledChannels) {
  CrossShardChannels none;
  EXPECT_EQ(ConservativeLookahead(none), kTimeNever);
  CrossShardChannels dispatch_only;
  dispatch_only.dispatch = 0.05;
  EXPECT_DOUBLE_EQ(ConservativeLookahead(dispatch_only), 0.05);
  CrossShardChannels all;
  all.dispatch = 0.05;
  all.kv_migration = 0.002;
  all.autoscale = 1.0;
  EXPECT_DOUBLE_EQ(ConservativeLookahead(all), 0.002);
  // A zero-latency channel clamps to the floor instead of stalling.
  CrossShardChannels zero;
  zero.dispatch = 0.0;
  EXPECT_DOUBLE_EQ(ConservativeLookahead(zero, 1e-6), 1e-6);
}

TEST(ShardedSimTest, EpochLoopRunsPlanAndAdvance) {
  ShardedSim sharded(4, 2);
  int planned = 0;
  std::vector<int> advances(4, 0);
  uint64_t epochs = sharded.Run(
      [&] {
        ++planned;
        return planned < 3 ? planned * 10.0 : kTimeNever;
      },
      [&](int shard, TimePoint horizon) {
        (void)horizon;
        advances[static_cast<size_t>(shard)]++;
        return uint64_t{5};
      });
  EXPECT_EQ(epochs, 3u);
  EXPECT_EQ(sharded.epochs(), 3u);
  for (int count : advances) {
    EXPECT_EQ(count, 3);
  }
  ASSERT_EQ(sharded.shard_perf().size(), 4u);
  for (const SimPerfCounters& perf : sharded.shard_perf()) {
    EXPECT_EQ(perf.events_processed, 15u);
  }
}

// The golden equivalence: one cell, zero dispatch latency => the fleet is
// exactly a plain AegaeonCluster::Run, request for request.
TEST(ShardedFleetTest, SingleCellReproducesSerialClusterExactly) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = FleetTrace(registry, 0.2, 120.0);

  AegaeonCluster serial(SmallCell(), registry, GpuSpec::H800());
  RunMetrics golden = serial.Run(trace);

  FleetConfig config;
  config.cells = 1;
  config.shards = 1;
  config.dispatch_latency = 0.0;  // cells == 1: channel disabled anyway
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);

  EXPECT_EQ(fleet.lookahead(), kTimeNever);
  EXPECT_EQ(fleet.epochs(), 1u);  // one exact, unbounded epoch
  ExpectBitIdentical(golden, metrics);
  ASSERT_EQ(fleet.cell(0).requests().size(), serial.requests().size());
  for (size_t i = 0; i < serial.requests().size(); ++i) {
    const Request& a = serial.requests()[i];
    const Request& b = fleet.cell(0).requests()[i];
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.first_token_time, b.first_token_time);
    EXPECT_EQ(a.completion, b.completion);
    EXPECT_EQ(a.tokens_met, b.tokens_met);
  }
}

// The tentpole determinism contract: for a fixed cell decomposition the
// shard count is parallelism only — RunMetrics are bit-identical for
// shards in {1, 2, 4, 8}.
TEST(ShardedFleetTest, ResultsBitIdenticalAcrossShardCounts) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(12);
  auto trace = FleetTrace(registry, 1.0, 90.0, 11);

  std::vector<RunMetrics> results;
  std::vector<uint64_t> epoch_counts;
  for (int shards : {1, 2, 4, 8}) {
    FleetConfig config;
    config.cells = 8;
    config.shards = shards;
    config.threads = 4;
    config.cell = SmallCell();
    ShardedFleet fleet(config, registry, GpuSpec::H800());
    results.push_back(fleet.Run(trace));
    epoch_counts.push_back(fleet.epochs());
    EXPECT_EQ(fleet.shards(), shards);
    EXPECT_EQ(static_cast<int>(results.back().shard_sim.size()), shards);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectBitIdentical(results[0], results[i]);
    EXPECT_EQ(results[0].sync_epochs, results[i].sync_epochs);
    EXPECT_EQ(epoch_counts[0], epoch_counts[i]);
  }
  EXPECT_GT(results[0].completed_requests, 50u);
  EXPECT_GT(results[0].sync_epochs, 1u);
}

TEST(ShardedFleetTest, DispatcherBalancesLoadAcrossCells) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(12);
  auto trace = FleetTrace(registry, 1.0, 90.0, 13);
  FleetConfig config;
  config.cells = 4;
  config.shards = 2;
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);

  uint64_t total_routed = 0;
  uint64_t min_routed = ~uint64_t{0};
  uint64_t max_routed = 0;
  for (uint64_t routed : fleet.routed()) {
    total_routed += routed;
    min_routed = std::min(min_routed, routed);
    max_routed = std::max(max_routed, routed);
  }
  EXPECT_EQ(total_routed, trace.size());
  EXPECT_EQ(metrics.total_requests, trace.size());
  // Least-outstanding routing across identical cells stays within a small
  // factor of even; a broken snapshot would pile everything on cell 0.
  EXPECT_GT(min_routed, 0u);
  EXPECT_LT(max_routed, total_routed / 2);
  // Per-cell metrics cover every cell and merge to the pooled totals.
  ASSERT_EQ(fleet.cell_metrics().size(), 4u);
  uint64_t merged = 0;
  for (const RunMetrics& cell : fleet.cell_metrics()) {
    merged += cell.total_requests;
  }
  EXPECT_EQ(merged, metrics.total_requests);
}

// Dispatch latency is simulated, not elided: every TTFT includes at least
// the router hop, and the arrival timestamps stay client-observed.
TEST(ShardedFleetTest, DispatchLatencyShowsUpInTtft) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  auto trace = FleetTrace(registry, 0.2, 60.0, 5);
  FleetConfig config;
  config.cells = 2;
  config.shards = 2;
  config.dispatch_latency = 0.5;  // exaggerated so it dominates noise
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);
  ASSERT_FALSE(metrics.ttft_samples.empty());
  for (double ttft : metrics.ttft_samples) {
    EXPECT_GE(ttft, 0.5);
  }
  EXPECT_DOUBLE_EQ(fleet.lookahead(), 0.5);
}

// The per-cell SimSan audit: a sharded run must be violation-free with
// every check attributed, and no cell may overrun an epoch horizon. With
// SimSan compiled out the checks are zero but the protocol audit
// (epochs, overruns) still holds.
TEST(ShardedFleetTest, AuditIsCleanUnderConservativeSync) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = FleetTrace(registry, 0.5, 90.0, 3);
  FleetConfig config;
  config.cells = 4;
  config.shards = 4;
  config.threads = 2;
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);
  FleetAudit audit = fleet.audit();
  EXPECT_EQ(audit.epochs, fleet.epochs());
  EXPECT_EQ(audit.violations, 0u);
  EXPECT_EQ(audit.sync_overruns, 0u);
#if AEGAEON_SIMSAN_ENABLED
  EXPECT_GT(audit.checks, 0u);
#endif
  EXPECT_EQ(metrics.sync_epochs, audit.epochs);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
}

// Satellite: shard-level perf counters aggregate into the pooled RunMetrics.
TEST(ShardedFleetTest, ShardPerfCountersSumToPooled) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = FleetTrace(registry, 0.5, 60.0, 19);
  FleetConfig config;
  config.cells = 4;
  config.shards = 2;
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);
  ASSERT_EQ(metrics.shard_sim.size(), 2u);
  uint64_t shard_events = 0;
  for (const SimPerfCounters& shard : metrics.shard_sim) {
    shard_events += shard.events_processed;
  }
  // Pooled counters come from the cells (including FinishRun bookkeeping);
  // shard counters cover the epoch advances. They must agree on the events
  // processed during the run.
  EXPECT_EQ(shard_events, metrics.sim.events_processed);
  EXPECT_GT(shard_events, 0u);
}

}  // namespace
}  // namespace aegaeon
