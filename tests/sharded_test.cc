// Tests for the sharded fleet simulation (core/fleet.h, sim/sharded_sim.h,
// sim/mailbox.h): conservative-sync determinism, serial equivalence, load
// balancing, and the SimSan per-cell audit.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cluster.h"
#include "core/fleet.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "sim/mailbox.h"
#include "sim/sharded_sim.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

AegaeonConfig SmallCell() {
  AegaeonConfig config;
  config.prefill_instances = 1;
  config.decode_instances = 2;
  return config;
}

std::vector<ArrivalEvent> FleetTrace(const ModelRegistry& registry, double rps, double horizon,
                                     uint64_t seed = 7) {
  return GeneratePoisson(registry, rps, horizon, Dataset::ShareGpt(), seed);
}

// Everything that makes two runs "the same results": full bitwise equality
// of the simulated outputs. Host-measured values (sim/shard_sim wall
// clocks) are deliberately excluded.
void ExpectBitIdentical(const RunMetrics& a, const RunMetrics& b) {
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.completed_requests, b.completed_requests);
  EXPECT_EQ(a.tokens_total, b.tokens_total);
  EXPECT_EQ(a.tokens_met, b.tokens_met);
  EXPECT_EQ(a.horizon, b.horizon);  // exact: same double or bust
  EXPECT_EQ(a.rejected_requests, b.rejected_requests);
  EXPECT_EQ(a.shed_requests, b.shed_requests);
  EXPECT_EQ(a.slo_good_requests, b.slo_good_requests);
  EXPECT_EQ(a.breakdown.prefill_wait, b.breakdown.prefill_wait);
  EXPECT_EQ(a.breakdown.prefill_exec, b.breakdown.prefill_exec);
  EXPECT_EQ(a.breakdown.decode_wait, b.breakdown.decode_wait);
  EXPECT_EQ(a.breakdown.decode_exec, b.breakdown.decode_exec);
  EXPECT_EQ(a.breakdown.control_overhead, b.breakdown.control_overhead);
  EXPECT_EQ(a.breakdown.data_overhead, b.breakdown.data_overhead);
  ASSERT_EQ(a.ttft_samples.size(), b.ttft_samples.size());
  for (size_t i = 0; i < a.ttft_samples.size(); ++i) {
    EXPECT_EQ(a.ttft_samples[i], b.ttft_samples[i]) << "ttft sample " << i;
  }
  ASSERT_EQ(a.request_latency_samples.size(), b.request_latency_samples.size());
  for (size_t i = 0; i < a.request_latency_samples.size(); ++i) {
    EXPECT_EQ(a.request_latency_samples[i], b.request_latency_samples[i]) << "latency " << i;
  }
  ASSERT_EQ(a.switch_latency_samples.size(), b.switch_latency_samples.size());
  for (size_t i = 0; i < a.switch_latency_samples.size(); ++i) {
    EXPECT_EQ(a.switch_latency_samples[i], b.switch_latency_samples[i]) << "switch " << i;
  }
  EXPECT_EQ(a.sim.events_processed, b.sim.events_processed);
}

TEST(MailboxTest, CollectOrdersByTimeSourceSeq) {
  EpochMailboxes<int> boxes(3);
  boxes.Post(1, 0, 5.0, 10);
  boxes.Post(0, 1, 5.0, 20);   // same time, lower source -> first
  boxes.Post(2, 2, 1.0, 30);   // earliest time -> very first
  boxes.Post(0, 1, 5.0, 40);   // same (time, source), later seq -> after 20
  boxes.Post(boxes.Dispatcher(), 0, 5.0, 50);  // dispatcher is the highest source id
  auto events = boxes.Collect();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].payload, 30);
  EXPECT_EQ(events[1].payload, 20);
  EXPECT_EQ(events[2].payload, 40);
  EXPECT_EQ(events[3].payload, 10);
  EXPECT_EQ(events[4].payload, 50);
  EXPECT_TRUE(boxes.empty());
  // A second collect is empty, and posting after a collect works.
  EXPECT_TRUE(boxes.Collect().empty());
  boxes.Post(0, 0, 9.0, 60);
  EXPECT_FALSE(boxes.empty());
  EXPECT_EQ(boxes.Collect().size(), 1u);
}

// The zero-steady-state-allocation contract: boxes grow from per-source
// arenas and a reused CollectInto scratch keeps its capacity, so post/
// collect cycles stop allocating once warmed up.
TEST(MailboxTest, CollectIntoReusesScratchAndArenas) {
  EpochMailboxes<int> boxes(2);
  std::vector<CrossShardEvent<int>> scratch;
  for (int cycle = 0; cycle < 4; ++cycle) {
    for (int i = 0; i < 100; ++i) {
      boxes.Post(static_cast<uint32_t>(i % 2), i % 3, static_cast<double>(i), i);
    }
    boxes.CollectInto(scratch);
    ASSERT_EQ(scratch.size(), 100u);
    EXPECT_TRUE(boxes.empty());
  }
  const size_t warm_capacity = scratch.capacity();
  const uint64_t warm_chunks = boxes.arena(0).chunk_allocs();
  EXPECT_GT(warm_chunks, 0u);
  for (int cycle = 0; cycle < 16; ++cycle) {
    for (int i = 0; i < 100; ++i) {
      boxes.Post(static_cast<uint32_t>(i % 2), i % 3, static_cast<double>(i), i);
    }
    boxes.CollectInto(scratch);
    EXPECT_EQ(scratch[0].seq, static_cast<uint64_t>(cycle + 4) * 50);
  }
  // Steady state: no new arena chunks, no scratch regrowth.
  EXPECT_EQ(boxes.arena(0).chunk_allocs(), warm_chunks);
  EXPECT_EQ(scratch.capacity(), warm_capacity);
}

TEST(ConservativeLookaheadTest, MinOfEnabledChannels) {
  CrossShardChannels none;
  EXPECT_EQ(ConservativeLookahead(none), kTimeNever);
  CrossShardChannels dispatch_only;
  dispatch_only.dispatch = 0.05;
  EXPECT_DOUBLE_EQ(ConservativeLookahead(dispatch_only), 0.05);
  CrossShardChannels all;
  all.dispatch = 0.05;
  all.kv_migration = 0.002;
  all.autoscale = 1.0;
  EXPECT_DOUBLE_EQ(ConservativeLookahead(all), 0.002);
  // A zero-latency channel clamps to the floor instead of stalling.
  CrossShardChannels zero;
  zero.dispatch = 0.0;
  EXPECT_DOUBLE_EQ(ConservativeLookahead(zero, 1e-6), 1e-6);
}

TEST(ShardedSimTest, EpochLoopRunsPlanAndAdvance) {
  ShardedSim sharded(4, 2);
  int planned = 0;
  std::vector<int> advances(4, 0);
  uint64_t epochs = sharded.Run(
      [&] {
        ++planned;
        ShardedSim::EpochPlan plan;  // defaults to the final drain epoch
        if (planned < 3) {
          plan.horizon = planned * 10.0;
          plan.slots_skipped = 2;
        }
        return plan;
      },
      /*has_work=*/{},
      [&](int shard, TimePoint horizon) {
        (void)horizon;
        advances[static_cast<size_t>(shard)]++;
        return uint64_t{5};
      });
  EXPECT_EQ(epochs, 3u);
  EXPECT_EQ(sharded.epochs(), 3u);
  EXPECT_EQ(sharded.epochs_skipped(), 4u);  // two planned epochs, 2 slots each
  for (int count : advances) {
    EXPECT_EQ(count, 3);
  }
  ASSERT_EQ(sharded.shard_perf().size(), 4u);
  for (const SimPerfCounters& perf : sharded.shard_perf()) {
    EXPECT_EQ(perf.events_processed, 15u);
  }
  // The global skip count is stamped on shard 0 only, so summing shard
  // entries counts it exactly once.
  EXPECT_EQ(sharded.shard_perf()[0].epochs_skipped, 4u);
  EXPECT_EQ(sharded.shard_perf()[1].epochs_skipped, 0u);
}

TEST(ShardedSimTest, IdleShardsAreNotSubmitted) {
  ShardedSim sharded(4, 2);
  int planned = 0;
  std::vector<int> advances(4, 0);
  sharded.Run(
      [&] {
        ++planned;
        ShardedSim::EpochPlan plan;
        if (planned < 4) {
          plan.horizon = planned * 10.0;
        }
        return plan;
      },
      // Odd shards idle for the finite epochs; everyone runs the drain.
      [&](int shard, TimePoint horizon) { return horizon >= kTimeNever || shard % 2 == 0; },
      [&](int shard, TimePoint horizon) {
        (void)horizon;
        advances[static_cast<size_t>(shard)]++;
        return uint64_t{1};
      });
  EXPECT_EQ(advances[0], 4);
  EXPECT_EQ(advances[1], 1);
  EXPECT_EQ(advances[2], 4);
  EXPECT_EQ(advances[3], 1);
  EXPECT_EQ(sharded.shard_perf()[0].idle_shard_skips, 0u);
  EXPECT_EQ(sharded.shard_perf()[1].idle_shard_skips, 3u);
  EXPECT_EQ(sharded.shard_perf()[3].idle_shard_skips, 3u);
}

TEST(ShardGangTest, RunsEverySliceEveryRound) {
  ShardGang gang(8, 4);
  EXPECT_EQ(gang.slices(), 8);
  EXPECT_EQ(gang.thread_count(), 4);
  std::vector<int> counts(8, 0);
  for (int round = 0; round < 50; ++round) {
    gang.Run([&](int slice) { counts[static_cast<size_t>(slice)]++; });
  }
  for (int count : counts) {
    EXPECT_EQ(count, 50);
  }
}

TEST(ShardGangTest, MaskSelectsSlices) {
  ShardGang gang(6, 3);
  std::vector<int> counts(6, 0);
  const std::vector<uint8_t> mask = {1, 0, 1, 0, 0, 1};
  for (int round = 0; round < 10; ++round) {
    gang.Run([&](int slice) { counts[static_cast<size_t>(slice)]++; }, &mask);
  }
  const std::vector<int> want = {10, 0, 10, 0, 0, 10};
  for (size_t i = 0; i < counts.size(); ++i) {
    EXPECT_EQ(counts[i], want[i]) << "slice " << i;
  }
}

TEST(ShardGangTest, SingleWorkerRunsInlineAndClampsThreads) {
  // threads > slices clamps to slices; one slice means one (inline) worker.
  ShardGang wide(2, 16);
  EXPECT_EQ(wide.thread_count(), 2);
  ShardGang gang(1, 8);
  EXPECT_EQ(gang.thread_count(), 1);
  int runs = 0;
  gang.Run([&](int slice) {
    EXPECT_EQ(slice, 0);
    ++runs;
  });
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(gang.worker_wait_seconds(0), 0.0);  // inline rounds never wait
}

// The golden equivalence: one cell, zero dispatch latency => the fleet is
// exactly a plain AegaeonCluster::Run, request for request.
TEST(ShardedFleetTest, SingleCellReproducesSerialClusterExactly) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = FleetTrace(registry, 0.2, 120.0);

  AegaeonCluster serial(SmallCell(), registry, GpuSpec::H800());
  RunMetrics golden = serial.Run(trace);

  FleetConfig config;
  config.cells = 1;
  config.shards = 1;
  config.dispatch_latency = 0.0;  // cells == 1: channel disabled anyway
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);

  EXPECT_EQ(fleet.lookahead(), kTimeNever);
  EXPECT_EQ(fleet.epochs(), 1u);  // one exact, unbounded epoch
  ExpectBitIdentical(golden, metrics);
  ASSERT_EQ(fleet.cell(0).requests().size(), serial.requests().size());
  for (size_t i = 0; i < serial.requests().size(); ++i) {
    const Request& a = serial.requests()[i];
    const Request& b = fleet.cell(0).requests()[i];
    EXPECT_EQ(a.arrival, b.arrival);
    EXPECT_EQ(a.first_token_time, b.first_token_time);
    EXPECT_EQ(a.completion, b.completion);
    EXPECT_EQ(a.tokens_met, b.tokens_met);
  }
}

// The tentpole determinism contract: for a fixed cell decomposition the
// shard count is parallelism only — RunMetrics are bit-identical for
// shards in {1, 2, 4, 8}, with epoch skipping on (default) AND off.
void ExpectShardCountInvariant(bool epoch_skipping) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(12);
  auto trace = FleetTrace(registry, 1.0, 90.0, 11);

  std::vector<RunMetrics> results;
  std::vector<uint64_t> epoch_counts;
  std::vector<uint64_t> skip_counts;
  for (int shards : {1, 2, 4, 8}) {
    FleetConfig config;
    config.cells = 8;
    config.shards = shards;
    config.threads = 4;
    config.epoch_skipping = epoch_skipping;
    config.cell = SmallCell();
    ShardedFleet fleet(config, registry, GpuSpec::H800());
    results.push_back(fleet.Run(trace));
    epoch_counts.push_back(fleet.epochs());
    skip_counts.push_back(fleet.epochs_skipped());
    EXPECT_EQ(fleet.shards(), shards);
    EXPECT_EQ(static_cast<int>(results.back().shard_sim.size()), shards);
  }
  for (size_t i = 1; i < results.size(); ++i) {
    ExpectBitIdentical(results[0], results[i]);
    EXPECT_EQ(results[0].sync_epochs, results[i].sync_epochs);
    EXPECT_EQ(results[0].sync_epochs_skipped, results[i].sync_epochs_skipped);
    EXPECT_EQ(epoch_counts[0], epoch_counts[i]);
    EXPECT_EQ(skip_counts[0], skip_counts[i]);
  }
  EXPECT_GT(results[0].completed_requests, 50u);
  EXPECT_GT(results[0].sync_epochs, 1u);
}

TEST(ShardedFleetTest, ResultsBitIdenticalAcrossShardCounts) {
  ExpectShardCountInvariant(/*epoch_skipping=*/true);
}

TEST(ShardedFleetTest, ResultsBitIdenticalAcrossShardCountsWithSkippingOff) {
  ExpectShardCountInvariant(/*epoch_skipping=*/false);
}

// The tentpole win: on a dense trace (every lookahead slot occupied), the
// quantum-batched barrier executes at least 2x fewer epochs than the
// one-slot-per-barrier protocol, and reports what it skipped.
TEST(ShardedFleetTest, EpochSkippingHalvesEpochCountOnDenseTraces) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(12);
  auto trace = FleetTrace(registry, 20.0, 45.0, 17);

  uint64_t epochs_by_mode[2] = {0, 0};
  for (const bool skipping : {false, true}) {
    FleetConfig config;
    config.cells = 8;
    config.shards = 4;
    config.threads = 2;
    config.epoch_skipping = skipping;
    config.cell = SmallCell();
    ShardedFleet fleet(config, registry, GpuSpec::H800());
    RunMetrics metrics = fleet.Run(trace);
    epochs_by_mode[skipping ? 1 : 0] = fleet.epochs();
    EXPECT_EQ(metrics.total_requests, trace.size());
    // Both modes report what they snap past (the off mode still fast-
    // forwards dead arrival slots, as the pre-skip protocol always did);
    // the quantum batching makes the on mode skip strictly more.
    EXPECT_EQ(metrics.sync_epochs_skipped, fleet.epochs_skipped());
    if (skipping) {
      EXPECT_GT(metrics.sync_epochs_skipped, 0u);
    }
    EXPECT_EQ(fleet.audit().sync_overruns, 0u);
  }
  EXPECT_GE(epochs_by_mode[0], 2 * epochs_by_mode[1])
      << "skipping on: " << epochs_by_mode[1] << " epochs, off: " << epochs_by_mode[0];
}

TEST(ShardedFleetTest, DispatcherBalancesLoadAcrossCells) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(12);
  auto trace = FleetTrace(registry, 1.0, 90.0, 13);
  FleetConfig config;
  config.cells = 4;
  config.shards = 2;
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);

  uint64_t total_routed = 0;
  uint64_t min_routed = ~uint64_t{0};
  uint64_t max_routed = 0;
  for (uint64_t routed : fleet.routed()) {
    total_routed += routed;
    min_routed = std::min(min_routed, routed);
    max_routed = std::max(max_routed, routed);
  }
  EXPECT_EQ(total_routed, trace.size());
  EXPECT_EQ(metrics.total_requests, trace.size());
  // Least-outstanding routing across identical cells stays within a small
  // factor of even; a broken snapshot would pile everything on cell 0.
  EXPECT_GT(min_routed, 0u);
  EXPECT_LT(max_routed, total_routed / 2);
  // Per-cell metrics cover every cell and merge to the pooled totals.
  ASSERT_EQ(fleet.cell_metrics().size(), 4u);
  uint64_t merged = 0;
  for (const RunMetrics& cell : fleet.cell_metrics()) {
    merged += cell.total_requests;
  }
  EXPECT_EQ(merged, metrics.total_requests);
}

// Dispatch latency is simulated, not elided: every TTFT includes at least
// the router hop, and the arrival timestamps stay client-observed.
TEST(ShardedFleetTest, DispatchLatencyShowsUpInTtft) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  auto trace = FleetTrace(registry, 0.2, 60.0, 5);
  FleetConfig config;
  config.cells = 2;
  config.shards = 2;
  config.dispatch_latency = 0.5;  // exaggerated so it dominates noise
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);
  ASSERT_FALSE(metrics.ttft_samples.empty());
  for (double ttft : metrics.ttft_samples) {
    EXPECT_GE(ttft, 0.5);
  }
  EXPECT_DOUBLE_EQ(fleet.lookahead(), 0.5);
}

// The per-cell SimSan audit: a sharded run must be violation-free with
// every check attributed, and no cell may overrun an epoch horizon. With
// SimSan compiled out the checks are zero but the protocol audit
// (epochs, overruns) still holds.
TEST(ShardedFleetTest, AuditIsCleanUnderConservativeSync) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = FleetTrace(registry, 0.5, 90.0, 3);
  FleetConfig config;
  config.cells = 4;
  config.shards = 4;
  config.threads = 2;
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);
  FleetAudit audit = fleet.audit();
  EXPECT_EQ(audit.epochs, fleet.epochs());
  EXPECT_EQ(audit.violations, 0u);
  EXPECT_EQ(audit.sync_overruns, 0u);
#if AEGAEON_SIMSAN_ENABLED
  EXPECT_GT(audit.checks, 0u);
#endif
  EXPECT_EQ(metrics.sync_epochs, audit.epochs);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
}

// Satellite: shard-level perf counters aggregate into the pooled RunMetrics.
TEST(ShardedFleetTest, ShardPerfCountersSumToPooled) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = FleetTrace(registry, 0.5, 60.0, 19);
  FleetConfig config;
  config.cells = 4;
  config.shards = 2;
  config.cell = SmallCell();
  ShardedFleet fleet(config, registry, GpuSpec::H800());
  RunMetrics metrics = fleet.Run(trace);
  ASSERT_EQ(metrics.shard_sim.size(), 2u);
  uint64_t shard_events = 0;
  for (const SimPerfCounters& shard : metrics.shard_sim) {
    shard_events += shard.events_processed;
  }
  // Pooled counters come from the cells (including FinishRun bookkeeping);
  // shard counters cover the epoch advances. They must agree on the events
  // processed during the run.
  EXPECT_EQ(shard_events, metrics.sim.events_processed);
  EXPECT_GT(shard_events, 0u);
}

}  // namespace
}  // namespace aegaeon
