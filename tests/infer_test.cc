// Engine-level validation: tensor primitives, the real paged KV cache, and
// the tiny reference transformer. The headline properties:
//   * paging invariance — any tokens_per_block yields identical outputs;
//   * preemption exactness — export/release/import resumes bit-identically
//     (the correctness contract behind §5's KV swapping).

#include <gtest/gtest.h>

#include <cmath>

#include "infer/paged_kv.h"
#include "infer/tensor.h"
#include "infer/tiny_llm.h"
#include "sim/random.h"

namespace aegaeon {
namespace {

constexpr size_t kArenaBytes = 1 << 22;  // 4 MiB
constexpr size_t kSlabBytes = 1 << 14;   // 16 KiB

// --- Tensor primitives -------------------------------------------------

TEST(TensorTest, VecMatMatchesManual) {
  Matrix w(2, 3);
  // w = [[1,2,3],[4,5,6]]; x = [10, 100] -> [410, 520, 630].
  w.at(0, 0) = 1;
  w.at(0, 1) = 2;
  w.at(0, 2) = 3;
  w.at(1, 0) = 4;
  w.at(1, 1) = 5;
  w.at(1, 2) = 6;
  std::vector<float> out = VecMat({10, 100}, w);
  EXPECT_FLOAT_EQ(out[0], 410);
  EXPECT_FLOAT_EQ(out[1], 520);
  EXPECT_FLOAT_EQ(out[2], 630);
}

TEST(TensorTest, SoftmaxNormalizesAndOrders) {
  std::vector<float> x = {1.0f, 2.0f, 3.0f};
  SoftmaxInPlace(x);
  float sum = x[0] + x[1] + x[2];
  EXPECT_NEAR(sum, 1.0f, 1e-6);
  EXPECT_LT(x[0], x[1]);
  EXPECT_LT(x[1], x[2]);
  // Stability: huge inputs must not overflow.
  std::vector<float> big = {1000.0f, 1000.0f};
  SoftmaxInPlace(big);
  EXPECT_NEAR(big[0], 0.5f, 1e-6);
}

TEST(TensorTest, RmsNormUnitScale) {
  std::vector<float> x = {3.0f, -4.0f};  // rms = sqrt(12.5)
  std::vector<float> out = RmsNorm(x, {1.0f, 1.0f});
  float rms = std::sqrt((out[0] * out[0] + out[1] * out[1]) / 2.0f);
  EXPECT_NEAR(rms, 1.0f, 1e-3);
}

TEST(TensorTest, RopePreservesNormAndPositionZeroIsIdentity) {
  std::vector<float> head = {1.0f, 2.0f, 3.0f, 4.0f};
  std::vector<float> original = head;
  RopeInPlace(head.data(), 4, /*pos=*/0);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(head[i], original[i], 1e-6);
  }
  RopeInPlace(head.data(), 4, /*pos=*/7);
  float norm_before = std::sqrt(Dot(original.data(), original.data(), 4));
  float norm_after = std::sqrt(Dot(head.data(), head.data(), 4));
  EXPECT_NEAR(norm_before, norm_after, 1e-4);
}

// --- Paged KV store ------------------------------------------------------

TEST(PagedKvTest, RoundTripsEntriesAcrossBlocks) {
  KvArena arena(kArenaBytes, kSlabBytes);
  PagedKvStore::Geometry geometry{2, 2, 4, 3};  // 3 tokens per block
  PagedKvStore store(geometry, &arena);
  Rng rng(5);
  std::vector<std::vector<float>> keys;
  std::vector<std::vector<float>> values;
  for (int pos = 0; pos < 10; ++pos) {
    std::vector<float> k(geometry.FloatsPerEntry());
    std::vector<float> v(geometry.FloatsPerEntry());
    for (auto& f : k) {
      f = static_cast<float>(rng.NextDouble());
    }
    for (auto& f : v) {
      f = static_cast<float>(rng.NextDouble());
    }
    for (int layer = 0; layer < geometry.layers; ++layer) {
      ASSERT_TRUE(store.Append(layer, pos, k.data(), v.data()));
    }
    keys.push_back(k);
    values.push_back(v);
  }
  EXPECT_EQ(store.tokens(), 10);
  EXPECT_EQ(store.blocks_held(), 2u * 4u);  // ceil(10/3)=4 blocks x 2 layers
  for (int pos = 0; pos < 10; ++pos) {
    for (int layer = 0; layer < geometry.layers; ++layer) {
      const float* k = store.KeyAt(layer, pos);
      const float* v = store.ValueAt(layer, pos);
      for (size_t i = 0; i < geometry.FloatsPerEntry(); ++i) {
        EXPECT_FLOAT_EQ(k[i], keys[pos][i]);
        EXPECT_FLOAT_EQ(v[i], values[pos][i]);
      }
    }
  }
}

TEST(PagedKvTest, ReleaseReturnsBlocksToArena) {
  KvArena arena(kArenaBytes, kSlabBytes);
  PagedKvStore::Geometry geometry{2, 2, 4, 4};
  size_t free_before = arena.slabs().free_slabs();
  {
    PagedKvStore store(geometry, &arena);
    std::vector<float> entry(geometry.FloatsPerEntry(), 1.0f);
    for (int pos = 0; pos < 16; ++pos) {
      for (int layer = 0; layer < 2; ++layer) {
        ASSERT_TRUE(store.Append(layer, pos, entry.data(), entry.data()));
      }
    }
    EXPECT_LT(arena.slabs().free_slabs(), free_before);
  }  // destructor releases
  EXPECT_EQ(arena.slabs().free_slabs(), free_before);
}

TEST(PagedKvTest, ExportImportRoundTripsExactly) {
  KvArena arena(kArenaBytes, kSlabBytes);
  PagedKvStore::Geometry geometry{3, 2, 4, 5};
  PagedKvStore store(geometry, &arena);
  Rng rng(9);
  std::vector<float> entry(geometry.FloatsPerEntry());
  for (int pos = 0; pos < 13; ++pos) {
    for (int layer = 0; layer < geometry.layers; ++layer) {
      for (auto& f : entry) {
        f = static_cast<float>(rng.NextDouble());
      }
      ASSERT_TRUE(store.Append(layer, pos, entry.data(), entry.data()));
    }
  }
  PagedKvStore::Snapshot snapshot = store.Export();
  store.Release();
  EXPECT_EQ(store.tokens(), 0);
  // Interleave a competing allocation so the re-imported blocks land at
  // different physical refs.
  PagedKvStore intruder(geometry, &arena);
  std::vector<float> filler(geometry.FloatsPerEntry(), 7.0f);
  for (int layer = 0; layer < geometry.layers; ++layer) {
    ASSERT_TRUE(intruder.Append(layer, layer == 0 ? 0 : 0, filler.data(), filler.data()));
  }
  ASSERT_TRUE(store.Import(snapshot));
  EXPECT_EQ(store.tokens(), 13);
  PagedKvStore::Snapshot again = store.Export();
  ASSERT_EQ(again.data.size(), snapshot.data.size());
  for (size_t i = 0; i < snapshot.data.size(); ++i) {
    ASSERT_EQ(again.data[i], snapshot.data[i]) << "float " << i;
  }
}

// --- Tiny LLM -------------------------------------------------------------

TEST(TinyLlmTest, DeterministicAcrossInstances) {
  TinyLlmConfig config;
  TinyLlm a(config, 42);
  TinyLlm b(config, 42);
  KvArena arena(kArenaBytes, kSlabBytes);
  PagedKvStore kva(config.KvGeometry(), &arena);
  PagedKvStore kvb(config.KvGeometry(), &arena);
  std::vector<int> prompt = {1, 7, 33};
  std::vector<int> ga = a.Generate(prompt, 12, kva);
  std::vector<int> gb = b.Generate(prompt, 12, kvb);
  EXPECT_EQ(ga, gb);
  ASSERT_EQ(ga.size(), 12u);
}

TEST(TinyLlmTest, DifferentSeedsDiverge) {
  TinyLlmConfig config;
  TinyLlm a(config, 1);
  TinyLlm b(config, 2);
  KvArena arena(kArenaBytes, kSlabBytes);
  PagedKvStore kva(config.KvGeometry(), &arena);
  PagedKvStore kvb(config.KvGeometry(), &arena);
  std::vector<int> prompt = {5, 9};
  EXPECT_NE(a.Generate(prompt, 16, kva), b.Generate(prompt, 16, kvb));
}

TEST(TinyLlmTest, PagingIsInvisible) {
  // The block size must not change the model's outputs: the block table
  // math is correct iff generation is invariant to tokens_per_block.
  TinyLlmConfig config;
  TinyLlm model(config, 7);
  std::vector<int> prompt = {2, 4, 8, 16};
  std::vector<int> reference;
  for (int tokens_per_block : {1, 3, 8, 64}) {
    KvArena arena(kArenaBytes, kSlabBytes);
    PagedKvStore kv(config.KvGeometry(tokens_per_block), &arena);
    std::vector<int> generated = model.Generate(prompt, 20, kv);
    ASSERT_EQ(generated.size(), 20u) << "tpb=" << tokens_per_block;
    if (reference.empty()) {
      reference = generated;
    } else {
      EXPECT_EQ(generated, reference) << "tpb=" << tokens_per_block;
    }
  }
}

TEST(TinyLlmTest, PreemptionIsExact) {
  // The §5 correctness contract: preempting a request, offloading its KV,
  // and restoring it later must not change a single output token.
  TinyLlmConfig config;
  TinyLlm model(config, 11);
  std::vector<int> prompt = {3, 1, 4, 1, 5};

  KvArena arena(kArenaBytes, kSlabBytes);
  PagedKvStore uninterrupted(config.KvGeometry(), &arena);
  std::vector<int> expected = model.Generate(prompt, 24, uninterrupted);
  ASSERT_EQ(expected.size(), 24u);

  // Same run, preempted after 9 generated tokens.
  PagedKvStore kv(config.KvGeometry(), &arena);
  std::vector<int> first = model.Generate(prompt, 9, kv);
  PagedKvStore::Snapshot snapshot = kv.Export();
  kv.Release();

  // Another request runs in between, churning the arena.
  PagedKvStore other(config.KvGeometry(), &arena);
  model.Generate({9, 9, 9}, 15, other);

  ASSERT_TRUE(kv.Import(snapshot));
  // Resume: feed the last generated token and continue.
  std::vector<int> rest = model.Generate({first.back()}, 24 - 9, kv);

  std::vector<int> combined = first;
  combined.insert(combined.end(), rest.begin(), rest.end());
  EXPECT_EQ(combined, expected);
}

TEST(TinyLlmTest, ArenaExhaustionStopsGracefully) {
  TinyLlmConfig config;
  TinyLlm model(config, 3);
  // An arena with room for only a few blocks.
  KvArena tiny(static_cast<size_t>(config.KvGeometry(4).BlockBytes()) * 6,
               config.KvGeometry(4).BlockBytes() * 2);
  PagedKvStore kv(config.KvGeometry(4), &tiny);
  std::vector<int> generated = model.Generate({1, 2, 3}, 64, kv);
  EXPECT_LT(generated.size(), 64u);  // ran out of blocks, no crash
}

}  // namespace
}  // namespace aegaeon
