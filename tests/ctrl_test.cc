// Tests for the replicated control plane (ctrl/): dispatcher policies, the
// fault-plan spec language, and the election / re-dispatch protocol driven
// through synthetic hooks (no cells involved — pure protocol).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/request.h"
#include "ctrl/control_plane.h"
#include "ctrl/dispatcher.h"
#include "ctrl/fault_plan.h"
#include "sim/time.h"

namespace aegaeon {
namespace {

ArrivalEvent At(TimePoint time, int model = 0) {
  ArrivalEvent event;
  event.time = time;
  event.model = model;
  event.prompt_tokens = 32;
  event.output_tokens = 16;
  return event;
}

TEST(DispatcherTest, LeastOutstandingPicksLowestLoadTiesLowestId) {
  LeastOutstandingDispatcher dispatcher;
  dispatcher.BeginRun(4);
  const std::vector<uint64_t> loads = {3, 1, 1, 2};
  const CellLoadFn load = [&](int cell) { return loads[static_cast<size_t>(cell)]; };
  EXPECT_EQ(dispatcher.Route(At(0.0), load, 4), 1);  // ties 1 vs 2 -> lowest id
  const std::vector<uint64_t> uniform = {5, 5, 5, 5};
  const CellLoadFn flat = [&](int cell) { return uniform[static_cast<size_t>(cell)]; };
  EXPECT_EQ(dispatcher.Route(At(1.0), flat, 4), 0);
}

TEST(DispatcherTest, RoundRobinCyclesAndResetsPerRun) {
  RoundRobinDispatcher dispatcher;
  const CellLoadFn load = [](int) { return uint64_t{0}; };
  dispatcher.BeginRun(3);
  EXPECT_EQ(dispatcher.Route(At(0.0), load, 3), 0);
  EXPECT_EQ(dispatcher.Route(At(1.0), load, 3), 1);
  EXPECT_EQ(dispatcher.Route(At(2.0), load, 3), 2);
  EXPECT_EQ(dispatcher.Route(At(3.0), load, 3), 0);
  dispatcher.BeginRun(3);  // a new run starts the cycle over
  EXPECT_EQ(dispatcher.Route(At(4.0), load, 3), 0);
}

TEST(FaultPlanTest, ParsesEveryKind) {
  FaultPlan plan;
  std::string error;
  EXPECT_TRUE(ParseFaultSpec("prefill:2@40+20", 1, &plan, &error));
  EXPECT_TRUE(ParseFaultSpec("cell/3/decode:1@60.5+15", 2, &plan, &error));
  EXPECT_TRUE(ParseFaultSpec("dispatcher@100", 3, &plan, &error));
  EXPECT_TRUE(ParseFaultSpec("dispatcher@100+30", 4, &plan, &error));
  EXPECT_TRUE(ParseFaultSpec("link:0.25@10+5", 5, &plan, &error));
  EXPECT_TRUE(ParseFaultSpec("aging:0.001", 6, &plan, &error));
  EXPECT_TRUE(ParseFaultSpec("cell/1/aging:0.001,0.002@50", 7, &plan, &error));
  ASSERT_EQ(plan.specs.size(), 7u);

  EXPECT_EQ(plan.specs[0].kind, FaultKind::kInstanceCrash);
  EXPECT_TRUE(plan.specs[0].prefill_partition);
  EXPECT_EQ(plan.specs[0].index, 2);
  EXPECT_EQ(plan.specs[0].cell, 0);
  EXPECT_DOUBLE_EQ(plan.specs[0].when, 40.0);
  EXPECT_DOUBLE_EQ(plan.specs[0].duration, 20.0);

  EXPECT_FALSE(plan.specs[1].prefill_partition);
  EXPECT_EQ(plan.specs[1].cell, 3);
  EXPECT_DOUBLE_EQ(plan.specs[1].when, 60.5);

  EXPECT_EQ(plan.specs[2].kind, FaultKind::kDispatcherCrash);
  EXPECT_DOUBLE_EQ(plan.specs[2].duration, 10.0);  // default re-bootstrap
  EXPECT_DOUBLE_EQ(plan.specs[3].duration, 30.0);
  EXPECT_TRUE(plan.HasDispatcherFault());

  EXPECT_EQ(plan.specs[4].kind, FaultKind::kLinkDegradation);
  EXPECT_DOUBLE_EQ(plan.specs[4].factor, 0.25);

  EXPECT_EQ(plan.specs[5].kind, FaultKind::kAgingDrift);
  EXPECT_DOUBLE_EQ(plan.specs[5].latency_rate, 0.001);
  EXPECT_DOUBLE_EQ(plan.specs[5].when, 0.0);
  EXPECT_EQ(plan.specs[6].cell, 1);
  EXPECT_DOUBLE_EQ(plan.specs[6].fragmentation_rate, 0.002);
  EXPECT_DOUBLE_EQ(plan.specs[6].when, 50.0);
}

TEST(FaultPlanTest, RejectsMalformedSpecsWithRowNumbers) {
  const struct {
    const char* text;
    const char* fragment;
  } kCases[] = {
      {"prefill:abc@5+2", "bad instance index"},
      {"prefill:1", "needs @T+DT"},
      {"prefill:1@5", "needs @T+DT"},
      {"decode:-1@5+2", "bad instance index"},
      {"dispatcher", "needs @T"},
      {"link:1.5@5+2", "bad link factor"},
      {"link:0@5+2", "bad link factor"},
      {"link:0.5@5", "needs @T+DT"},
      {"aging:0", "nonzero rate"},
      {"aging:0.1@5+2", "not @T+DT"},
      {"aging:x", "bad aging latency rate"},
      {"cell/x/decode:0@5+2", "bad cell index"},
      {"cell/1", "expected cell/C/<fault>"},
      {"prefill:1@-5+2", "out of range"},
      {"prefill:1@5+0", "out of range"},
      {"prefill:1@x+2", "bad time window"},
      {"warp:1@5+2", "unknown fault"},
  };
  int row = 0;
  for (const auto& test_case : kCases) {
    ++row;
    FaultPlan plan;
    std::string error;
    EXPECT_FALSE(ParseFaultSpec(test_case.text, row, &plan, &error)) << test_case.text;
    EXPECT_TRUE(plan.specs.empty()) << test_case.text;
    const std::string want_prefix = "spec " + std::to_string(row) + ": ";
    EXPECT_EQ(error.compare(0, want_prefix.size(), want_prefix), 0)
        << "error '" << error << "' must carry its row number";
    EXPECT_NE(error.find(test_case.fragment), std::string::npos)
        << "error '" << error << "' must mention '" << test_case.fragment << "'";
  }
}

TEST(FaultPlanTest, ListParsingStopsAtFirstBadRow) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(ParseFaultSpecs({"prefill:1@5+2", "decode:0@9+1", "bogus"}, &plan, &error));
  EXPECT_EQ(plan.specs.size(), 2u);  // the good rows before the bad one
  EXPECT_EQ(error.compare(0, 8, "spec 3: "), 0) << error;
  FaultPlan good;
  EXPECT_TRUE(ParseFaultSpecs({"prefill:1@5+2", "dispatcher@9"}, &good, &error));
  EXPECT_EQ(good.specs.size(), 2u);
}

// A deliver/unroute recorder: the control plane's only view of the fleet.
struct HookLog {
  struct Delivery {
    TimePoint at = 0.0;
    TimePoint arrival = 0.0;
    int target = 0;
  };
  std::vector<Delivery> deliveries;
  int routes = 0;
  int unroutes = 0;

  ControlPlane::Hooks Hooks(int target = 0) {
    ControlPlane::Hooks hooks;
    hooks.route = [this, target](const ArrivalEvent&) {
      ++routes;
      return target;
    };
    hooks.deliver = [this](const ArrivalEvent& event, int cell, TimePoint at) {
      deliveries.push_back(Delivery{at, event.time, cell});
    };
    hooks.unroute = [this](int) { ++unroutes; };
    return hooks;
  }
};

ControlPlaneConfig Replicated(int replicas) {
  ControlPlaneConfig config;
  config.replicas = replicas;
  return config;
}

constexpr Duration kHop = 0.05;  // dispatch latency used throughout

TEST(ControlPlaneTest, SoloReplicaCommitsEverythingImmediately) {
  HookLog log;
  ControlPlane ctrl(Replicated(1), kHop, log.Hooks());
  ctrl.Begin();
  ctrl.Offer(At(1.0));
  ctrl.Offer(At(2.5));
  // Idle control plane: arrivals alone bound the fleet's epochs.
  EXPECT_EQ(ctrl.NextPendingTime(), kTimeNever);
  EXPECT_TRUE(ctrl.Drained());
  ASSERT_EQ(log.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(log.deliveries[0].at, 1.0 + kHop);
  EXPECT_DOUBLE_EQ(log.deliveries[1].at, 2.5 + kHop);
  EXPECT_EQ(log.unroutes, 0);
  EXPECT_EQ(ctrl.leader(), 0);
  EXPECT_EQ(ctrl.term(), 1u);
  EXPECT_FALSE(ctrl.stats().Any());  // all-zero: the unreplicated golden path
}

TEST(ControlPlaneTest, ReplicationWithoutFaultsChangesNothingObservable) {
  HookLog log;
  ControlPlane ctrl(Replicated(3), kHop, log.Hooks());
  ctrl.Begin();
  ctrl.Offer(At(1.0));
  ctrl.AdvanceTo(30.0);  // plenty of heartbeat rounds
  ctrl.Offer(At(30.5));
  EXPECT_EQ(ctrl.NextPendingTime(), kTimeNever);  // heartbeats never bound epochs
  ASSERT_EQ(log.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(log.deliveries[0].at, 1.0 + kHop);
  EXPECT_DOUBLE_EQ(log.deliveries[1].at, 30.5 + kHop);
  EXPECT_EQ(ctrl.leader(), 0);
  EXPECT_EQ(ctrl.term(), 1u);
  EXPECT_EQ(ctrl.stats().elections, 0u);
  EXPECT_EQ(ctrl.stats().failovers, 0u);
  EXPECT_GT(ctrl.stats().heartbeats_sent, 0u);
}

TEST(ControlPlaneTest, LeaderCrashElectsStaggeredSuccessorAndReplaysExactlyOnce) {
  HookLog log;
  ControlPlane ctrl(Replicated(3), kHop, log.Hooks());
  ctrl.ScheduleLeaderCrash(/*when=*/10.0, /*downtime=*/5.0);
  ctrl.Begin();
  ctrl.Offer(At(5.0));    // far from the crash: commits eagerly
  ctrl.Offer(At(9.99));   // due 10.04 > crash 10.0: enters the log
  EXPECT_FALSE(ctrl.Drained());
  // The in-flight delivery bounds the fleet's epoch planner.
  EXPECT_DOUBLE_EQ(ctrl.NextPendingTime(), 9.99 + kHop);
  ctrl.Drain();
  EXPECT_TRUE(ctrl.Drained());

  // The lost entry was un-routed once and re-delivered exactly once, by
  // the successor, after the crash.
  EXPECT_EQ(log.unroutes, 1);
  EXPECT_EQ(log.routes, 3);  // two originals + one replay
  ASSERT_EQ(log.deliveries.size(), 2u);
  EXPECT_DOUBLE_EQ(log.deliveries[0].at, 5.0 + kHop);
  EXPECT_GT(log.deliveries[1].at, 10.0);
  EXPECT_DOUBLE_EQ(log.deliveries[1].arrival, 9.99);  // client time preserved

  // Replica 1 has the shortest staggered timeout, so it wins the election
  // with a fresh term; the machine never splits.
  EXPECT_EQ(ctrl.leader(), 1);
  EXPECT_EQ(ctrl.term(), 2u);
  const CtrlStats& stats = ctrl.stats();
  EXPECT_EQ(stats.elections, 1u);
  EXPECT_EQ(stats.failovers, 1u);
  EXPECT_EQ(stats.redispatched_requests, 1u);
  EXPECT_EQ(stats.max_log_depth, 1u);
  EXPECT_GT(stats.leader_downtime, 0.0);

  // Drain() stops the instant the replay commits; play the heartbeat
  // cadence out past the old leader's recovery (at 15) to observe the new
  // leader's beats bouncing off the still-down replica.
  ctrl.AdvanceTo(20.0);
  EXPECT_GT(stats.heartbeats_missed, 0u);
}

TEST(ControlPlaneTest, ReplayMissingFromShadowLogCountsAsFrontdoorRecovery) {
  HookLog log;
  ControlPlane ctrl(Replicated(3), kHop, log.Hooks());
  // Crash between the route (9.99) and the leader's next heartbeat round
  // (10.0): the successor's shadow log never learns of seq 2.
  ctrl.ScheduleLeaderCrash(/*when=*/9.995, /*downtime=*/5.0);
  ctrl.Begin();
  ctrl.Offer(At(5.0));
  ctrl.Offer(At(9.99));
  ctrl.Drain();
  EXPECT_EQ(ctrl.stats().redispatched_requests, 1u);
  EXPECT_EQ(ctrl.stats().frontdoor_replays, 1u);
  ASSERT_EQ(log.deliveries.size(), 2u);
}

TEST(ControlPlaneTest, ShadowedReplayIsNotAFrontdoorRecovery) {
  HookLog log;
  ControlPlane ctrl(Replicated(3), kHop, log.Hooks());
  // Crash at 10.0: the 10.0 heartbeat round (same instant, processed
  // before the fault injection) replicates seq 2 to the followers first.
  ctrl.ScheduleLeaderCrash(/*when=*/10.0, /*downtime=*/5.0);
  ctrl.Begin();
  ctrl.Offer(At(9.99));
  ctrl.Drain();
  EXPECT_EQ(ctrl.stats().redispatched_requests, 1u);
  EXPECT_EQ(ctrl.stats().frontdoor_replays, 0u);
}

TEST(ControlPlaneTest, ArrivalsDuringOutageQueueAndReplayInOrder) {
  HookLog log;
  ControlPlane ctrl(Replicated(3), kHop, log.Hooks());
  ctrl.ScheduleLeaderCrash(/*when=*/10.0, /*downtime=*/60.0);
  ctrl.Begin();
  ctrl.Offer(At(9.98));   // lost in flight
  ctrl.Offer(At(10.5));   // leaderless: queued
  ctrl.Offer(At(11.0));   // leaderless: queued
  // Queued arrivals: the next protocol event (the election machinery) is
  // what bounds the planner now.
  EXPECT_LT(ctrl.NextPendingTime(), kTimeNever);
  ctrl.Drain();
  ASSERT_EQ(log.deliveries.size(), 3u);
  // Replayed lost entry first, then the queued arrivals, in arrival order,
  // all delivered after the successor took over.
  EXPECT_DOUBLE_EQ(log.deliveries[0].arrival, 9.98);
  EXPECT_DOUBLE_EQ(log.deliveries[1].arrival, 10.5);
  EXPECT_DOUBLE_EQ(log.deliveries[2].arrival, 11.0);
  for (const HookLog::Delivery& d : log.deliveries) {
    EXPECT_GT(d.at, 10.0);
  }
  EXPECT_EQ(ctrl.stats().redispatched_requests, 1u);
  EXPECT_EQ(ctrl.stats().max_log_depth, 3u);  // lost entry + two queued arrivals
}

TEST(ControlPlaneTest, SoloReplicaReElectsItselfAfterRecovery) {
  HookLog log;
  ControlPlane ctrl(Replicated(1), kHop, log.Hooks());
  ctrl.ScheduleLeaderCrash(/*when=*/10.0, /*downtime=*/5.0);
  ctrl.Begin();
  ctrl.Offer(At(9.99));  // lost with the sole replica
  ctrl.Drain();
  ASSERT_EQ(log.deliveries.size(), 1u);
  // Recovery at 15, self-election after its own timeout: majority of one.
  EXPECT_GT(log.deliveries[0].at, 15.0);
  EXPECT_EQ(ctrl.leader(), 0);
  EXPECT_EQ(ctrl.term(), 2u);
  EXPECT_EQ(ctrl.stats().failovers, 1u);
  EXPECT_DOUBLE_EQ(ctrl.stats().leader_downtime,
                   log.deliveries[0].at - kHop - 10.0);
}

TEST(ControlPlaneTest, RepeatedCrashesFailOverEachTime) {
  HookLog log;
  ControlPlane ctrl(Replicated(3), kHop, log.Hooks());
  ctrl.ScheduleLeaderCrash(10.0, 5.0);
  ctrl.ScheduleLeaderCrash(30.0, 5.0);
  ctrl.Begin();
  ctrl.Offer(At(9.99));
  ctrl.Offer(At(29.99));
  ctrl.Drain();
  ASSERT_EQ(log.deliveries.size(), 2u);
  EXPECT_EQ(ctrl.stats().failovers, 2u);
  EXPECT_EQ(ctrl.stats().redispatched_requests, 2u);
  EXPECT_EQ(ctrl.term(), 3u);  // one fresh term per election
}

TEST(ControlPlaneTest, BeginResetsProtocolStateBetweenRuns) {
  HookLog log;
  ControlPlane ctrl(Replicated(3), kHop, log.Hooks());
  ctrl.ScheduleLeaderCrash(10.0, 5.0);
  for (int run = 0; run < 2; ++run) {
    log = HookLog{};
    ctrl.Begin();
    ctrl.Offer(At(9.99));
    ctrl.Drain();
    ASSERT_EQ(log.deliveries.size(), 1u) << "run " << run;
    EXPECT_EQ(ctrl.stats().failovers, 1u) << "run " << run;
    EXPECT_EQ(ctrl.term(), 2u) << "run " << run;
  }
}

TEST(ControlPlaneDeathTest, RejectsInvalidCrashPlans) {
  HookLog log;
  ControlPlane ctrl(Replicated(3), kHop, log.Hooks());
  EXPECT_DEATH(ctrl.ScheduleLeaderCrash(-1.0, 5.0), "invalid plan");
  EXPECT_DEATH(ctrl.ScheduleLeaderCrash(10.0, 0.0), "invalid plan");
}

TEST(ControlPlaneDeathTest, LogOverflowAborts) {
  HookLog log;
  // A sole replica: once it crashes no majority exists anywhere, so the
  // front-door queue can only grow. (With peers, a successor drains it.)
  ControlPlaneConfig config = Replicated(1);
  config.redispatch_log_capacity = 4;
  ControlPlane ctrl(config, kHop, log.Hooks());
  ctrl.ScheduleLeaderCrash(10.0, 1e6);  // never recovers within the run
  ctrl.Begin();
  EXPECT_DEATH(
      {
        for (int i = 0; i < 8; ++i) {
          ctrl.Offer(At(10.5 + static_cast<double>(i)));
        }
      },
      "re-dispatch log overflow");
}

}  // namespace
}  // namespace aegaeon
