// Cross-cutting end-to-end properties of the Aegaeon cluster, swept over
// seeds, loads, and configurations. These are the invariants that must hold
// no matter how the schedulers, caches, and transfer engine interleave.

#include <gtest/gtest.h>

#include <tuple>

#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

struct SweepParam {
  uint64_t seed;
  int models;
  double rps;
  int prefill;
  int decode;
  int nodes;
  int residents;
  int64_t chunk;
};

class ClusterPropertyTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ClusterPropertyTest, InvariantsHold) {
  const SweepParam& p = GetParam();
  ModelRegistry registry = ModelRegistry::MidSizeMarket(p.models);
  auto trace = GeneratePoisson(registry, p.rps, 120.0, Dataset::ShareGpt(), p.seed);

  AegaeonConfig config;
  config.prefill_instances = p.prefill;
  config.decode_instances = p.decode;
  config.nodes = p.nodes;
  config.resident_models = p.residents;
  config.prefill_chunk_tokens = p.chunk;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);

  // 1. Liveness: everything completes, nothing is lost or duplicated.
  ASSERT_EQ(metrics.total_requests, trace.size());
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);

  int64_t tokens = 0;
  for (const Request& r : cluster.requests()) {
    // 2. Per-request sanity.
    ASSERT_TRUE(r.finished());
    EXPECT_EQ(r.generated, r.output_tokens);
    EXPECT_LE(r.tokens_met, r.output_tokens);
    EXPECT_GE(r.first_token_time, r.arrival);
    EXPECT_GE(r.completion, r.first_token_time);
    // 3. Breakdown terms are non-negative and bounded by total latency.
    double latency = r.completion - r.arrival;
    EXPECT_GE(r.prefill_wait, 0.0);
    EXPECT_GE(r.decode_wait, 0.0);
    EXPECT_GE(r.prefill_exec, 0.0);
    EXPECT_GE(r.decode_exec, 0.0);
    EXPECT_LE(r.prefill_wait + r.prefill_exec, latency + 1e-6);
    tokens += r.output_tokens;
  }
  EXPECT_EQ(tokens, metrics.tokens_total);

  // 4. Scaling: every recorded switch latency is positive and bounded.
  for (double v : metrics.switch_latency_samples) {
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 60.0);
  }

  // 5. Memory: after the run drains, CPU KV usage is only move-list residue.
  const UnifiedKvCache& cpu = cluster.cpu_kv_cache();
  EXPECT_LE(cpu.slabs().total_used_bytes(),
            static_cast<uint64_t>(cpu.move_list_size() + 1) * 64 * 1024 * 1024);

  // 6. Utilization fractions are well-formed.
  for (double util : cluster.GpuUtilization(metrics.horizon)) {
    EXPECT_GE(util, 0.0);
    EXPECT_LE(util, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ClusterPropertyTest,
    ::testing::Values(SweepParam{1, 8, 0.10, 2, 2, 1, 1, 0},
                      SweepParam{2, 16, 0.15, 2, 3, 1, 1, 0},
                      SweepParam{3, 24, 0.10, 3, 5, 1, 1, 0},
                      SweepParam{4, 8, 0.30, 2, 3, 1, 1, 0},   // hot market
                      SweepParam{5, 12, 0.10, 2, 3, 2, 1, 0},  // two nodes
                      SweepParam{6, 12, 0.10, 2, 3, 1, 2, 0},  // resident set
                      SweepParam{7, 12, 0.10, 2, 3, 1, 1, 512},  // chunked
                      SweepParam{8, 12, 0.12, 2, 3, 3, 2, 1024},  // everything on
                      SweepParam{9, 40, 0.05, 3, 5, 1, 1, 0},  // wide market
                      SweepParam{10, 6, 0.50, 2, 4, 1, 1, 0}));  // few hot models

}  // namespace
}  // namespace aegaeon
