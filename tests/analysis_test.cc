// Tests for metrics folding, statistics helpers, Theorem 3.1, and the
// table printer.

#include <gtest/gtest.h>

#include <sstream>

#include "analysis/metrics.h"
#include "analysis/stats.h"
#include "analysis/table.h"
#include "analysis/theory.h"

namespace aegaeon {
namespace {

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> values = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(values, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(values, 25), 2.0);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0.0);
}

TEST(StatsTest, MeanHandlesEmpty) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({2.0, 4.0}), 3.0);
}

TEST(StatsTest, CdfIsMonotone) {
  std::vector<double> values;
  for (int i = 100; i > 0; --i) {
    values.push_back(static_cast<double>(i));
  }
  auto cdf = BuildCdf(values, 10);
  ASSERT_EQ(cdf.size(), 10u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 100.0);
}

TEST(MetricsTest, FoldCountsTokensAndCompletion) {
  std::vector<Request> requests(2);
  requests[0].output_tokens = 10;
  requests[0].generated = 10;
  requests[0].tokens_met = 8;
  requests[0].arrival = 0.0;
  requests[0].first_token_time = 1.0;
  requests[0].completion = 5.0;
  requests[1].output_tokens = 20;
  requests[1].generated = 5;  // unfinished
  requests[1].tokens_met = 5;
  RunMetrics metrics = FoldRequests(requests, 100.0);
  EXPECT_EQ(metrics.total_requests, 2u);
  EXPECT_EQ(metrics.completed_requests, 1u);
  EXPECT_EQ(metrics.tokens_total, 30);
  EXPECT_EQ(metrics.tokens_met, 13);
  EXPECT_NEAR(metrics.SloAttainment(), 13.0 / 30.0, 1e-12);
  EXPECT_DOUBLE_EQ(metrics.Throughput(), 0.01);
  ASSERT_EQ(metrics.ttft_samples.size(), 1u);
  EXPECT_DOUBLE_EQ(metrics.ttft_samples[0], 1.0);
}

TEST(MetricsTest, FillDecodeWaitsDerivesResidual) {
  std::vector<Request> requests(1);
  Request& r = requests[0];
  r.output_tokens = 10;
  r.generated = 10;
  r.first_token_time = 1.0;
  r.completion = 11.0;
  r.decode_exec = 4.0;
  FillDecodeWaits(requests);
  EXPECT_DOUBLE_EQ(r.decode_wait, 6.0);
}

TEST(TheoryTest, ClosedFormMatchesPaperExample) {
  // §3.1: M = 100, lambda = 0.037, T = 16.79 s => E[m] = 46.55. (The exact
  // closed form gives 46.27; the paper evidently rounded lambda/T, so allow
  // a 0.3-model slack.)
  EXPECT_NEAR(ExpectedActiveModels(100, 0.037, 16.79), 46.55, 0.3);
  // Limits: no arrivals -> 0 active; infinite service -> all active.
  EXPECT_NEAR(ExpectedActiveModels(50, 0.0001, 0.01), 0.0, 0.01);
  EXPECT_NEAR(ExpectedActiveModels(50, 10.0, 100.0), 50.0, 0.01);
}

TEST(TheoryTest, SimulationFluctuatesAroundExpectation) {
  // Figure 4: the simulated active model count fluctuates around E[m].
  ActiveModelTrace trace = SimulateActiveModels(100, 0.037, 16.79, /*horizon=*/4000.0,
                                                /*sample_interval=*/1.0, /*seed=*/3,
                                                /*warmup=*/100.0);
  EXPECT_NEAR(trace.mean, 46.55, 2.5);
  int min_count = 1000;
  int max_count = 0;
  for (int c : trace.active_counts) {
    min_count = std::min(min_count, c);
    max_count = std::max(max_count, c);
  }
  EXPECT_LT(min_count, 47);
  EXPECT_GT(max_count, 46);
}

class TheoremSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double, double>> {};

TEST_P(TheoremSweepTest, SimulationMatchesClosedForm) {
  auto [models, lambda, service] = GetParam();
  double expected = ExpectedActiveModels(models, lambda, service);
  ActiveModelTrace trace =
      SimulateActiveModels(models, lambda, service, 6000.0, 2.0, 17, 200.0);
  EXPECT_NEAR(trace.mean, expected, std::max(2.0, expected * 0.08));
}

INSTANTIATE_TEST_SUITE_P(Grid, TheoremSweepTest,
                         ::testing::Values(std::make_tuple(50, 0.02, 10.0),
                                           std::make_tuple(100, 0.037, 16.79),
                                           std::make_tuple(100, 0.1, 5.0),
                                           std::make_tuple(200, 0.01, 30.0)));

TEST(TableTest, PrintsAlignedRows) {
  Table table({"system", "slo"});
  table.AddRow({"Aegaeon", Table::Pct(0.915)});
  table.AddRow({"ServerlessLLM", Table::Pct(0.4)});
  std::ostringstream os;
  table.Print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("Aegaeon"), std::string::npos);
  EXPECT_NE(out.find("91.5%"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Num(2.0, 0), "2");
}

TEST(SeriesTest, PrintsPairs) {
  std::ostringstream os;
  PrintSeries(os, "fig", {1.0, 2.0}, {0.5, 0.25}, 2);
  EXPECT_EQ(os.str(), "fig: (1.00, 0.50) (2.00, 0.25)\n");
}

}  // namespace
}  // namespace aegaeon
