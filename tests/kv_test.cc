// Tests for the unified KV caches and the fine-grained transfer engine
// (§5.2 "Unified KV cache", §5.3 synchronization rules ❶❷❸).

#include <gtest/gtest.h>

#include "hw/gpu_device.h"
#include "hw/gpu_spec.h"
#include "kv/transfer_engine.h"
#include "kv/unified_cache.h"
#include "model/model_spec.h"

namespace aegaeon {
namespace {

constexpr uint64_t kMiB = 1024 * 1024;

UnifiedKvCache MakeCache(const char* name, uint64_t capacity_mb = 1024,
                         uint64_t slab_mb = 64) {
  return UnifiedKvCache(name, capacity_mb * kMiB, slab_mb * kMiB, /*tokens_per_block=*/16);
}

TEST(UnifiedKvCacheTest, IdenticalShapesShareAClass) {
  UnifiedKvCache cache = MakeCache("c");
  ShapeClassId a = cache.RegisterShape(ModelSpec::Qwen7B().kv_shape(), 2);
  ShapeClassId b = cache.RegisterShape(ModelSpec::Qwen7B().kv_shape(), 2);
  ShapeClassId c = cache.RegisterShape(ModelSpec::Llama13B().kv_shape(), 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(UnifiedKvCacheTest, BlockBytesMatchTable1Geometry) {
  UnifiedKvCache cache = MakeCache("c");
  ShapeClassId qwen = cache.RegisterShape(ModelSpec::Qwen7B().kv_shape(), 2);
  // 512 KB/token * 16 tokens per block = 8 MiB.
  EXPECT_EQ(cache.BlockBytes(qwen), 16u * 512 * 1024);
}

TEST(UnifiedKvCacheTest, BlocksForTokensRoundsUp) {
  UnifiedKvCache cache = MakeCache("c");
  EXPECT_EQ(cache.BlocksForTokens(0), 0);
  EXPECT_EQ(cache.BlocksForTokens(1), 1);
  EXPECT_EQ(cache.BlocksForTokens(16), 1);
  EXPECT_EQ(cache.BlocksForTokens(17), 2);
}

TEST(UnifiedKvCacheTest, DeferredFreeUnavailableUntilEventCompletes) {
  // Rule ❸: blocks touched by an in-flight transfer are not reallocated.
  UnifiedKvCache cache("c", 64 * kMiB, 64 * kMiB, 16);  // exactly one slab
  ShapeClassId shape = cache.RegisterShape(ModelSpec::InternLm2_7B().kv_shape(), 2);
  auto blocks = cache.AllocTokens(shape, 16 * 32);  // the whole slab
  ASSERT_FALSE(blocks.empty());

  StreamSim stream("copy");
  stream.Enqueue(0.0, 5.0);
  cache.DeferFree(blocks, stream.Record());

  // Before the transfer completes: allocation fails even after Reclaim.
  cache.Reclaim(2.0);
  EXPECT_TRUE(cache.AllocTokens(shape, 16).empty());
  EXPECT_EQ(cache.move_list_size(), 1u);

  // After completion: reclaimed and allocatable again.
  EXPECT_GT(cache.Reclaim(5.0), 0u);
  EXPECT_FALSE(cache.AllocTokens(shape, 16).empty());
  EXPECT_EQ(cache.move_list_size(), 0u);
}

TEST(UnifiedKvCacheTest, FreeTokensEstimateTracksCapacity) {
  UnifiedKvCache cache("c", 128 * kMiB, 64 * kMiB, 16);
  ShapeClassId shape = cache.RegisterShape(ModelSpec::InternLm2_7B().kv_shape(), 2);
  int64_t total = cache.FreeTokensEstimate(shape);
  EXPECT_GT(total, 0);
  auto blocks = cache.AllocTokens(shape, 160);
  EXPECT_EQ(cache.FreeTokensEstimate(shape), total - 160);
  cache.Free(blocks);
  EXPECT_EQ(cache.FreeTokensEstimate(shape), total);
}

// --- TransferEngine ---------------------------------------------------------

class TransferEngineTest : public ::testing::Test {
 protected:
  TransferEngineTest()
      : gpu_(0, GpuSpec::H800()),
        gpu2_(1, GpuSpec::H800()),
        gpu_cache_(MakeCache("gpu")),
        gpu2_cache_(MakeCache("gpu2")),
        cpu_cache_(MakeCache("cpu", 4096)) {
    shape_ = gpu_cache_.RegisterShape(ModelSpec::Qwen7B().kv_shape(), 2);
    ShapeClassId s2 = gpu2_cache_.RegisterShape(ModelSpec::Qwen7B().kv_shape(), 2);
    ShapeClassId sc = cpu_cache_.RegisterShape(ModelSpec::Qwen7B().kv_shape(), 2);
    EXPECT_EQ(shape_, s2);
    EXPECT_EQ(shape_, sc);
  }

  KvHandle MakeGpuHandle(int64_t tokens) {
    KvHandle handle;
    handle.gpu_shape = shape_;
    handle.cpu_shape = shape_;
    handle.tokens = tokens;
    handle.blocks = gpu_cache_.AllocTokens(shape_, tokens);
    handle.location = KvLocation::kGpu;
    handle.gpu = gpu_.id();
    return handle;
  }

  GpuDevice gpu_;
  GpuDevice gpu2_;
  UnifiedKvCache gpu_cache_;
  UnifiedKvCache gpu2_cache_;
  UnifiedKvCache cpu_cache_;
  TransferEngine xfer_;
  ShapeClassId shape_ = 0;
};

TEST_F(TransferEngineTest, SwapOutMovesHandleToCpu) {
  KvHandle handle = MakeGpuHandle(64);
  ASSERT_TRUE(xfer_.SwapOut(handle, gpu_, gpu_cache_, cpu_cache_, 0.0));
  EXPECT_EQ(handle.location, KvLocation::kCpu);
  EXPECT_FALSE(handle.blocks.empty());
  EXPECT_GT(handle.last_transfer.complete_at(), 0.0);
  EXPECT_EQ(xfer_.stats().swap_outs, 1u);
  // The GPU blocks sit in the move list until the copy finishes.
  EXPECT_EQ(gpu_cache_.move_list_size(), 1u);
  gpu_cache_.Reclaim(handle.last_transfer.complete_at());
  EXPECT_EQ(gpu_cache_.move_list_size(), 0u);
}

TEST_F(TransferEngineTest, SwapInWaitsForSwapOut) {
  // Rule ❷: the decode instance's swap-in must wait for the prefill
  // instance's swap-out of the same blocks.
  KvHandle handle = MakeGpuHandle(2048);
  ASSERT_TRUE(xfer_.SwapOut(handle, gpu_, gpu_cache_, cpu_cache_, 0.0));
  TimePoint out_done = handle.last_transfer.complete_at();
  EXPECT_GT(out_done, 0.0);

  // Swap-in submitted immediately on another GPU, long before the swap-out
  // completes: the H2D copy must start no earlier than the D2H finishes.
  ASSERT_TRUE(xfer_.SwapIn(handle, gpu2_, gpu2_cache_, cpu_cache_, 0.0));
  EXPECT_EQ(handle.location, KvLocation::kGpu);
  EXPECT_EQ(handle.gpu, gpu2_.id());
  EXPECT_GE(handle.last_transfer.complete_at(), 2.0 * out_done - 1e-9);
}

TEST_F(TransferEngineTest, InferenceGatesOnSwapInEvent) {
  // Rule ❶: decoding may only start once the KV cache is on the GPU.
  KvHandle handle = MakeGpuHandle(4096);
  xfer_.SwapOut(handle, gpu_, gpu_cache_, cpu_cache_, 0.0);
  xfer_.SwapIn(handle, gpu2_, gpu2_cache_, cpu_cache_, 0.0);
  TimePoint ready = handle.last_transfer.complete_at();
  EXPECT_FALSE(handle.last_transfer.Query(ready * 0.5));
  EXPECT_TRUE(handle.last_transfer.Query(ready));
}

TEST_F(TransferEngineTest, SwapOutFailsWhenCpuCacheFull) {
  UnifiedKvCache tiny_cpu("tiny", 64 * kMiB, 64 * kMiB, 16);
  tiny_cpu.RegisterShape(ModelSpec::Qwen7B().kv_shape(), 2);
  KvHandle big = MakeGpuHandle(16 * 64);  // needs 4 slabs worth
  EXPECT_FALSE(xfer_.SwapOut(big, gpu_, gpu_cache_, tiny_cpu, 0.0));
  // Handle untouched on failure.
  EXPECT_EQ(big.location, KvLocation::kGpu);
  EXPECT_FALSE(big.blocks.empty());
}

TEST_F(TransferEngineTest, ExtendAllocatesOnlyWhenCrossingBlocks) {
  KvHandle handle = MakeGpuHandle(20);  // 2 blocks (32 token capacity)
  size_t before = handle.blocks.size();
  EXPECT_TRUE(xfer_.Extend(handle, gpu_cache_, 10));  // 30 <= 32
  EXPECT_EQ(handle.blocks.size(), before);
  EXPECT_TRUE(xfer_.Extend(handle, gpu_cache_, 10));  // 40 > 32
  EXPECT_GT(handle.blocks.size(), before);
  EXPECT_EQ(handle.tokens, 40);
}

TEST_F(TransferEngineTest, ReleaseRoutesThroughMoveLists) {
  KvHandle handle = MakeGpuHandle(64);
  xfer_.SwapOut(handle, gpu_, gpu_cache_, cpu_cache_, 0.0);
  xfer_.Release(handle, gpu_cache_, cpu_cache_);
  EXPECT_EQ(handle.location, KvLocation::kNone);
  EXPECT_TRUE(handle.blocks.empty());
  EXPECT_GE(cpu_cache_.move_list_size(), 1u);
}

TEST_F(TransferEngineTest, ControlOverheadAccumulates) {
  KvHandle handle = MakeGpuHandle(64);
  xfer_.SwapOut(handle, gpu_, gpu_cache_, cpu_cache_, 0.0);
  xfer_.SwapIn(handle, gpu2_, gpu2_cache_, cpu_cache_, 0.0);
  EXPECT_NEAR(xfer_.stats().control_overhead, 2 * 0.0005, 1e-12);
  EXPECT_GT(xfer_.stats().bytes_out, 0.0);
  EXPECT_GT(xfer_.stats().bytes_in, 0.0);
}

}  // namespace
}  // namespace aegaeon
