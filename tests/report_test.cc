// Tests for per-model reporting, JSON export, and the diurnal generator.

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "analysis/report.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

TEST(ReportTest, PerModelRowsAggregateCorrectly) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(4);
  std::vector<Request> requests(3);
  requests[0].model = 1;
  requests[0].output_tokens = 10;
  requests[0].generated = 10;
  requests[0].tokens_met = 9;
  requests[0].first_token_time = 2.0;
  requests[0].completion = 5.0;
  requests[1].model = 1;
  requests[1].output_tokens = 20;
  requests[1].generated = 5;
  requests[1].tokens_met = 5;
  requests[2].model = 3;
  requests[2].output_tokens = 8;
  requests[2].generated = 8;
  requests[2].tokens_met = 8;
  requests[2].first_token_time = 1.0;
  requests[2].completion = 2.0;

  auto report = BuildPerModelReport(requests, registry);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].id, 1u);
  EXPECT_EQ(report[0].requests, 2u);
  EXPECT_EQ(report[0].completed, 1u);
  EXPECT_EQ(report[0].tokens_total, 30);
  EXPECT_EQ(report[0].tokens_met, 14);
  EXPECT_NEAR(report[0].Attainment(), 14.0 / 30.0, 1e-12);
  EXPECT_EQ(report[1].id, 3u);
  EXPECT_NEAR(report[1].Attainment(), 1.0, 1e-12);
}

TEST(ReportTest, PrintedTableContainsModelNames) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(2);
  std::vector<Request> requests(1);
  requests[0].model = 0;
  requests[0].output_tokens = 4;
  requests[0].generated = 4;
  requests[0].tokens_met = 4;
  auto report = BuildPerModelReport(requests, registry);
  std::ostringstream os;
  PrintPerModelReport(os, report);
  EXPECT_NE(os.str().find(registry.Get(0).spec.name), std::string::npos);
}

TEST(ReportTest, MetricsJsonIsBalancedAndContainsKeys) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  auto trace = GeneratePoisson(registry, 0.1, 80.0, Dataset::ShareGpt(), 3);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  std::ostringstream os;
  WriteMetricsJson(os, metrics);
  std::string out = os.str();
  for (const char* key : {"slo_attainment", "ttft_p99_s", "breakdown", "decode_wait_s"}) {
    EXPECT_NE(out.find(key), std::string::npos) << key;
  }
  int depth = 0;
  for (char c : out) {
    depth += (c == '{');
    depth -= (c == '}');
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(DiurnalTest, MeanRateMatchesAndModulationIsVisible) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(20);
  const double period = 600.0;
  const double horizon = 2400.0;  // 4 full periods
  auto events =
      GenerateDiurnal(registry, 0.2, horizon, period, /*amplitude=*/0.8, Dataset::ShareGpt(), 9);
  // Mean rate over whole periods matches the configured mean.
  double mean = static_cast<double>(events.size()) / horizon;
  EXPECT_NEAR(mean, 20 * 0.2, 0.35);
  // Aggregate modulation is damped by per-model phase staggering, but a
  // single model's rate must swing with its own phase.
  auto counts_for = [&](ModelId m, double lo, double hi) {
    int n = 0;
    for (const ArrivalEvent& e : events) {
      n += (e.model == m && e.time >= lo && e.time < hi);
    }
    return n;
  };
  // Model 0 has phase 0: peak near period/4, trough near 3*period/4.
  int peak = 0;
  int trough = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    double base = cycle * period;
    peak += counts_for(0, base + period * 0.10, base + period * 0.40);
    trough += counts_for(0, base + period * 0.60, base + period * 0.90);
  }
  EXPECT_GT(peak, trough);
}

TEST(DiurnalTest, ZeroAmplitudeReducesToPoisson) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(10);
  auto events =
      GenerateDiurnal(registry, 0.1, 2000.0, 600.0, 0.0, Dataset::ShareGpt(), 4);
  EXPECT_NEAR(static_cast<double>(events.size()) / 2000.0, 1.0, 0.12);
}

}  // namespace
}  // namespace aegaeon
