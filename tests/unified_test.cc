// Tests for the unified (non-disaggregated) scheduling baseline (§4.1).

#include <gtest/gtest.h>

#include "analysis/stats.h"
#include "baselines/unified.h"
#include "core/cluster.h"
#include "hw/gpu_spec.h"
#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

std::vector<ArrivalEvent> Trace(const ModelRegistry& registry, double rps = 0.1,
                                double horizon = 150.0) {
  return GeneratePoisson(registry, rps, horizon, Dataset::ShareGpt(), 21);
}

TEST(UnifiedClusterTest, CompletesEveryRequestUnderBothPolicies) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = Trace(registry);
  for (UnifiedPolicy policy : {UnifiedPolicy::kPrefillFirst, UnifiedPolicy::kDecodeFirst}) {
    UnifiedConfig config;
    config.instances = 4;
    config.policy = policy;
    UnifiedCluster cluster(config, registry, GpuSpec::H800());
    RunMetrics metrics = cluster.Run(trace);
    EXPECT_EQ(metrics.completed_requests, metrics.total_requests);
    for (const Request& r : cluster.requests()) {
      EXPECT_TRUE(r.finished());
      EXPECT_LE(r.tokens_met, r.generated);
    }
  }
}

TEST(UnifiedClusterTest, LowLoadMeetsSlos) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  auto trace = Trace(registry, 0.05);
  UnifiedConfig config;
  config.instances = 4;
  UnifiedCluster cluster(config, registry, GpuSpec::H800());
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_GT(metrics.SloAttainment(), 0.9);
}

TEST(UnifiedClusterTest, DecodeFirstHurtsTtft) {
  // §4.1 / Figure 6(b): decode-first compromises TTFT.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(16);
  auto trace = Trace(registry, 0.15);
  auto run = [&](UnifiedPolicy policy) {
    UnifiedConfig config;
    config.instances = 6;
    config.policy = policy;
    UnifiedCluster cluster(config, registry, GpuSpec::H800());
    RunMetrics metrics = cluster.Run(trace);
    return Percentile(metrics.ttft_samples, 99);
  };
  double prefill_first = run(UnifiedPolicy::kPrefillFirst);
  double decode_first = run(UnifiedPolicy::kDecodeFirst);
  EXPECT_GT(decode_first, 2.0 * prefill_first);
}

TEST(UnifiedClusterTest, DisaggregationBeatsBothUnderBursts) {
  // The §4.1 conclusion, as a regression test.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(20);
  Dataset dataset = Dataset::ShareGpt();
  auto trace = Trace(registry, 0.12, 180.0);
  AddBurst(trace, registry, 0, 2.5, 40.0, 20.0, dataset, 5);
  AddBurst(trace, registry, 1, 2.5, 90.0, 20.0, dataset, 6);

  double unified_best = 0.0;
  for (UnifiedPolicy policy : {UnifiedPolicy::kPrefillFirst, UnifiedPolicy::kDecodeFirst}) {
    UnifiedConfig config;
    config.instances = 8;
    config.policy = policy;
    UnifiedCluster cluster(config, registry, GpuSpec::H800());
    unified_best = std::max(unified_best, cluster.Run(trace).SloAttainment());
  }
  AegaeonConfig config;
  config.prefill_instances = 3;
  config.decode_instances = 5;
  AegaeonCluster aegaeon(config, registry, GpuSpec::H800());
  double disagg = aegaeon.Run(trace).SloAttainment();
  EXPECT_GE(disagg, unified_best);
}

TEST(UnifiedClusterTest, DeterministicAcrossRuns) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  auto trace = Trace(registry);
  UnifiedConfig config;
  config.instances = 4;
  UnifiedCluster a(config, registry, GpuSpec::H800());
  UnifiedCluster b(config, registry, GpuSpec::H800());
  RunMetrics ma = a.Run(trace);
  RunMetrics mb = b.Run(trace);
  EXPECT_EQ(ma.tokens_met, mb.tokens_met);
  EXPECT_DOUBLE_EQ(ma.horizon, mb.horizon);
}

}  // namespace
}  // namespace aegaeon
