// SimSan detection tests: deliberately violate each rule class against the
// shadow state and assert the violation is caught and correctly classified.
// The ShadowState/SimSan classes compile in every build, so these tests run
// with and without -DAEGAEON_SIMSAN=ON; the end-to-end tests at the bottom
// additionally exercise the instrumented production hooks and are gated on
// the macro.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/cluster.h"
#include "hw/cuda_sim.h"
#include "hw/gpu_spec.h"
#include "kv/unified_cache.h"
#include "model/registry.h"
#include "sanitizer/simsan.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace simsan {
namespace {

// Shorthand for building block lists.
std::vector<BlockRef> Blocks(std::initializer_list<uint32_t> indices, uint32_t slab = 0) {
  std::vector<BlockRef> out;
  for (uint32_t index : indices) {
    out.push_back(BlockRef{slab, index});
  }
  return out;
}

// Distinct non-null identities for allocators/streams/queues. The shadow
// only compares these pointers, so any stable addresses work.
struct Identities {
  char gpu_cache, cpu_cache, stream, stream2, queue, gpu;
};

class ShadowStateTest : public ::testing::Test {
 protected:
  ShadowState state_;
  Identities id_;

  void AllocBlocks(const void* alloc, const std::vector<BlockRef>& blocks) {
    state_.OnAlloc(alloc, blocks.data(), blocks.size());
  }

  size_t CountViolations(RuleClass rule) const {
    size_t n = 0;
    for (const Violation& v : state_.violations()) {
      if (v.rule == rule) {
        n++;
      }
    }
    return n;
  }
};

// --- rule ❶: compute-not-ready --------------------------------------------

TEST_F(ShadowStateTest, ComputeOnNonResidentBlocksIsRule1) {
  // No allocation at all: the KV never reached this cache.
  state_.OnCompute(&id_.gpu_cache, Blocks({0, 1}), &id_.stream, 1.0, 2.0, /*owner=*/7);
  ASSERT_EQ(state_.violations().size(), 2u);
  EXPECT_EQ(state_.violations()[0].rule, RuleClass::kComputeNotReady);
  EXPECT_NE(state_.violations()[0].message.find("not allocated"), std::string::npos);
}

TEST_F(ShadowStateTest, ComputeBeforeSwapInCompletesIsRule1) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  // Swap-in writes the block over [1, 5).
  state_.OnTransfer(&id_.cpu_cache, {}, &id_.gpu_cache, Blocks({0}), &id_.stream,
                    /*now=*/1.0, /*start=*/1.0, /*end=*/5.0, /*owner=*/3);
  // Decode launches at t=2 without querying the swap-in event.
  state_.OnCompute(&id_.gpu_cache, Blocks({0}), &id_.stream2, 2.0, 3.0, /*owner=*/3);
  ASSERT_EQ(state_.violations().size(), 1u);
  EXPECT_EQ(state_.violations()[0].rule, RuleClass::kComputeNotReady);
  EXPECT_NE(state_.violations()[0].message.find("swap-in event"), std::string::npos);
}

TEST_F(ShadowStateTest, ComputeAfterSwapInCompletesIsClean) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnTransfer(&id_.cpu_cache, {}, &id_.gpu_cache, Blocks({0}), &id_.stream, 1.0, 1.0, 5.0,
                    3);
  state_.OnCompute(&id_.gpu_cache, Blocks({0}), &id_.stream2, 5.0, 6.0, 3);
  EXPECT_TRUE(state_.violations().empty());
}

TEST_F(ShadowStateTest, ComputeOnAnotherRequestsBlocksIsRule1) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnCompute(&id_.gpu_cache, Blocks({0}), &id_.stream, 1.0, 2.0, /*owner=*/3);
  ASSERT_TRUE(state_.violations().empty());
  // A different request decodes over request 3's KV.
  state_.OnCompute(&id_.gpu_cache, Blocks({0}), &id_.stream, 2.0, 3.0, /*owner=*/4);
  ASSERT_EQ(state_.violations().size(), 1u);
  EXPECT_EQ(state_.violations()[0].rule, RuleClass::kComputeNotReady);
  EXPECT_NE(state_.violations()[0].message.find("owned by request 3"), std::string::npos);
}

TEST_F(ShadowStateTest, ComputeOnMoveListedBlocksIsRule1) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnDeferFree(&id_.gpu_cache, Blocks({0}), /*transfer_done=*/9.0);
  state_.OnCompute(&id_.gpu_cache, Blocks({0}), &id_.stream, 1.0, 2.0, 3);
  ASSERT_EQ(state_.violations().size(), 1u);
  EXPECT_EQ(state_.violations()[0].rule, RuleClass::kComputeNotReady);
  EXPECT_NE(state_.violations()[0].message.find("move list"), std::string::npos);
}

// --- rule ❷: transfer-overlap ---------------------------------------------

TEST_F(ShadowStateTest, TransferOverlappingPriorTransferIsRule2) {
  AllocBlocks(&id_.cpu_cache, Blocks({0, 1}));
  // First transfer writes the CPU blocks over [0, 10).
  state_.OnTransfer(&id_.gpu_cache, {}, &id_.cpu_cache, Blocks({0, 1}), &id_.stream, 0.0, 0.0,
                    10.0, 1);
  // Second transfer reads them starting at t=4 — no stream wait.
  state_.OnTransfer(&id_.cpu_cache, Blocks({0, 1}), &id_.gpu_cache, {}, &id_.stream2, 4.0, 4.0,
                    8.0, 1);
  EXPECT_EQ(CountViolations(RuleClass::kTransferOverlap), 2u);
  EXPECT_NE(state_.violations()[0].message.find("cudaStreamWaitEvent"), std::string::npos);
}

TEST_F(ShadowStateTest, BackToBackTransfersWithWaitAreClean) {
  AllocBlocks(&id_.cpu_cache, Blocks({0, 1}));
  state_.OnTransfer(&id_.gpu_cache, {}, &id_.cpu_cache, Blocks({0, 1}), &id_.stream, 0.0, 0.0,
                    10.0, 1);
  // The second copy's stream waited on the first copy's event: start == 10.
  state_.OnTransfer(&id_.cpu_cache, Blocks({0, 1}), &id_.gpu_cache, {}, &id_.stream2, 4.0, 10.0,
                    14.0, 1);
  EXPECT_TRUE(state_.violations().empty());
}

// --- rule ❸: free-in-flight -----------------------------------------------

TEST_F(ShadowStateTest, ImmediateFreeDuringTransferIsRule3) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnTransfer(&id_.gpu_cache, Blocks({0}), &id_.cpu_cache, {}, &id_.stream, 0.0, 0.0, 10.0,
                    1);
  // Release bypasses the move list while the copy still reads the block.
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 0});
  ASSERT_EQ(CountViolations(RuleClass::kFreeInFlight), 1u);
  EXPECT_NE(state_.violations()[0].message.find("bypassed the move list"), std::string::npos);
}

TEST_F(ShadowStateTest, EarlyMoveListReclaimIsRule3) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnDeferFree(&id_.gpu_cache, Blocks({0}), /*transfer_done=*/10.0);
  // The reclaim daemon frees at t=4 without querying the event.
  state_.AdvanceTime(4.0);
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 0});
  ASSERT_EQ(CountViolations(RuleClass::kFreeInFlight), 1u);
  EXPECT_NE(state_.violations()[0].message.find("before its move-list transfer"),
            std::string::npos);
}

TEST_F(ShadowStateTest, MoveListReclaimAfterEventIsClean) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnDeferFree(&id_.gpu_cache, Blocks({0}), /*transfer_done=*/10.0);
  state_.AdvanceTime(11.0);
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 0});
  EXPECT_TRUE(state_.violations().empty());
}

TEST_F(ShadowStateTest, ReallocWhileCopyInFlightIsRule3) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnTransfer(&id_.gpu_cache, Blocks({0}), &id_.cpu_cache, {}, &id_.stream, 0.0, 0.0, 10.0,
                    1);
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 0});  // first rule-3 violation
  AllocBlocks(&id_.gpu_cache, Blocks({0}));       // handed out again at t=0
  EXPECT_EQ(CountViolations(RuleClass::kFreeInFlight), 2u);
}

// --- leak -----------------------------------------------------------------

TEST_F(ShadowStateTest, TeardownReportsLeakedBlocksWithOwners) {
  AllocBlocks(&id_.gpu_cache, Blocks({0, 1, 2}));
  state_.OnCompute(&id_.gpu_cache, Blocks({0, 1, 2}), &id_.stream, 0.0, 1.0, /*owner=*/5);
  state_.OnDeferFree(&id_.gpu_cache, Blocks({2}), 2.0);  // move-listed: not a leak
  EXPECT_EQ(state_.CheckTeardown(&id_.gpu_cache), 2u);
  ASSERT_EQ(CountViolations(RuleClass::kLeak), 1u);
  EXPECT_NE(state_.violations()[0].message.find("request 5"), std::string::npos);
}

TEST_F(ShadowStateTest, CleanTeardownReportsNothing) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 0});
  EXPECT_EQ(state_.CheckTeardown(&id_.gpu_cache), 0u);
  EXPECT_TRUE(state_.violations().empty());
}

TEST_F(ShadowStateTest, VramShadowDriftIsLeak) {
  state_.OnVramAlloc(&id_.gpu, 1000.0);
  state_.OnVramFree(&id_.gpu, 400.0);
  EXPECT_DOUBLE_EQ(state_.VramOutstanding(&id_.gpu), 600.0);
  state_.CheckVramTeardown(&id_.gpu, /*device_reported=*/600.0);
  EXPECT_TRUE(state_.violations().empty());
  state_.CheckVramTeardown(&id_.gpu, /*device_reported=*/0.0);
  EXPECT_EQ(CountViolations(RuleClass::kLeak), 1u);
}

// --- double-free ----------------------------------------------------------

TEST_F(ShadowStateTest, FreeOfUnallocatedBlockIsDoubleFree) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 0});
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 0});
  EXPECT_EQ(CountViolations(RuleClass::kDoubleFree), 1u);
}

TEST_F(ShadowStateTest, DoubleDeferFreeIsDoubleFree) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnDeferFree(&id_.gpu_cache, Blocks({0}), 5.0);
  state_.OnDeferFree(&id_.gpu_cache, Blocks({0}), 6.0);
  ASSERT_EQ(CountViolations(RuleClass::kDoubleFree), 1u);
  EXPECT_NE(state_.violations()[0].message.find("defer-freed twice"), std::string::npos);
}

TEST_F(ShadowStateTest, VramOverFreeIsDoubleFree) {
  state_.OnVramAlloc(&id_.gpu, 100.0);
  state_.OnVramFree(&id_.gpu, 250.0);
  EXPECT_EQ(CountViolations(RuleClass::kDoubleFree), 1u);
  EXPECT_DOUBLE_EQ(state_.VramOutstanding(&id_.gpu), 0.0);  // clamped after report
}

// --- time-regression ------------------------------------------------------

TEST_F(ShadowStateTest, BackwardsDispatchIsTimeRegression) {
  state_.OnDispatch(&id_.queue, 1.0);
  state_.OnDispatch(&id_.queue, 2.0);
  state_.OnDispatch(&id_.queue, 1.5);
  ASSERT_EQ(CountViolations(RuleClass::kTimeRegression), 1u);
  EXPECT_NE(state_.violations()[0].message.find("ran backwards"), std::string::npos);
}

TEST_F(ShadowStateTest, IndependentQueuesDoNotInterfere) {
  // Two queues with interleaved timestamps: monotone per queue, fine.
  char other_queue = 0;
  state_.OnDispatch(&id_.queue, 5.0);
  state_.OnDispatch(&other_queue, 1.0);
  state_.OnDispatch(&other_queue, 2.0);
  state_.OnDispatch(&id_.queue, 6.0);
  EXPECT_TRUE(state_.violations().empty());
}

TEST_F(ShadowStateTest, ForgettingAQueueResetsItsClock) {
  state_.OnDispatch(&id_.queue, 100.0);
  state_.ForgetQueue(&id_.queue);
  // A new queue reusing the address starts from scratch.
  state_.OnDispatch(&id_.queue, 1.0);
  EXPECT_TRUE(state_.violations().empty());
}

// --- bookkeeping / reporting ---------------------------------------------

TEST_F(ShadowStateTest, ForgettingAnAllocatorDropsItsBlocks) {
  AllocBlocks(&id_.gpu_cache, Blocks({0, 1}));
  EXPECT_EQ(state_.TrackedBlocks(), 2u);
  state_.ForgetAllocator(&id_.gpu_cache);
  EXPECT_EQ(state_.TrackedBlocks(), 0u);
  // Address reuse after destruction starts clean — no double-alloc report.
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  EXPECT_TRUE(state_.violations().empty());
}

TEST_F(ShadowStateTest, ViolationCarriesOffendingPairAndTrace) {
  state_.NameObject(&id_.gpu_cache, "gpu-kv-0");
  state_.NameObject(&id_.stream, "gpu0/kv_out");
  AllocBlocks(&id_.gpu_cache, Blocks({3}));
  state_.OnTransfer(&id_.gpu_cache, Blocks({3}), &id_.cpu_cache, {}, &id_.stream, 0.0, 0.0, 10.0,
                    42);
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 3});
  ASSERT_EQ(state_.violations().size(), 1u);
  const Violation& v = state_.violations()[0];
  EXPECT_EQ(v.current.op, ShadowOp::kFree);
  EXPECT_EQ(v.previous.op, ShadowOp::kTransferRead);
  EXPECT_EQ(v.previous.owner, 42);
  EXPECT_FALSE(v.recent.empty());
  std::string formatted = FormatViolation(v, state_);
  EXPECT_NE(formatted.find("rule-3:free-in-flight"), std::string::npos);
  EXPECT_NE(formatted.find("gpu-kv-0"), std::string::npos);
  EXPECT_NE(formatted.find("gpu0/kv_out"), std::string::npos);
}

TEST_F(ShadowStateTest, ResetClearsEverything) {
  AllocBlocks(&id_.gpu_cache, Blocks({0}));
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 0});
  state_.OnFree(&id_.gpu_cache, BlockRef{0, 0});
  EXPECT_FALSE(state_.violations().empty());
  state_.Reset();
  EXPECT_TRUE(state_.violations().empty());
  EXPECT_EQ(state_.TrackedBlocks(), 0u);
  EXPECT_EQ(state_.checks(), 0u);
}

TEST(SimSanTest, ReportCountsPerRule) {
  SimSan san;
  san.set_fatal(false);
  char alloc = 0;
  BlockRef block{0, 0};
  san.state().OnFree(&alloc, block);         // double-free
  san.state().OnDispatch(&alloc, 5.0);
  san.state().OnDispatch(&alloc, 4.0);       // time-regression
  SimSanReport report = san.report();
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.Count(RuleClass::kDoubleFree), 1u);
  EXPECT_EQ(report.Count(RuleClass::kTimeRegression), 1u);
  EXPECT_EQ(report.Count(RuleClass::kLeak), 0u);
  EXPECT_GT(report.checks, 0u);
}

#if AEGAEON_SIMSAN_ENABLED

// --- end-to-end: the production hooks feed the thread-local checker -------

// RAII guard: collect violations instead of aborting, restore afterwards.
class CollectingScope {
 public:
  CollectingScope() {
    ThreadInstance().Reset();
    ThreadInstance().set_fatal(false);
  }
  ~CollectingScope() {
    ThreadInstance().Reset();
    ThreadInstance().set_fatal(true);
  }
};

TEST(SimSanEndToEndTest, MoveListBypassInRealCacheIsCaught) {
  CollectingScope scope;
  UnifiedKvCache cache("e2e-cache", 64 << 20, 16 << 20, 16);
  ShapeClassId shape = cache.RegisterShape(KvShape{4, 4, 64}, 2);
  std::vector<BlockRef> blocks = cache.AllocTokens(shape, 64);
  ASSERT_FALSE(blocks.empty());

  // A copy touches the blocks until t=10 (recorded on a real stream).
  StreamSim stream("e2e-stream");
  stream.Enqueue(0.0, 10.0);
  EventSim done = stream.Record();
  cache.DeferFree(blocks, done);

  // Bug under test: freeing the blocks directly instead of waiting for the
  // reclaim daemon to observe the event (rule ❸).
  cache.Free(blocks);

  SimSanReport report = ThreadInstance().report();
  EXPECT_EQ(report.Count(RuleClass::kFreeInFlight), blocks.size());
}

TEST(SimSanEndToEndTest, DefaultConfigSimulationRunsClean) {
  CollectingScope scope;
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  AegaeonConfig config;
  config.prefill_instances = 2;
  config.decode_instances = 2;
  AegaeonCluster cluster(config, registry, GpuSpec::H800());
  std::vector<ArrivalEvent> trace =
      GeneratePoisson(registry, /*rps=*/0.1, /*horizon=*/150.0, Dataset::ShareGpt(), /*seed=*/1);
  RunMetrics metrics = cluster.Run(trace);
  EXPECT_EQ(metrics.completed_requests, metrics.total_requests);

  SimSanReport report = ThreadInstance().report();
  for (const Violation& v : report.violations) {
    ADD_FAILURE() << FormatViolation(v, ThreadInstance().state());
  }
  EXPECT_TRUE(report.clean());
  // The hooks really fired: a full simulation performs many thousands of
  // instrumented operations.
  EXPECT_GT(report.checks, 1000u);
}

#endif  // AEGAEON_SIMSAN_ENABLED

}  // namespace
}  // namespace simsan
}  // namespace aegaeon
