// Unit tests for the simulated hardware substrate: streams, events, PCIe
// links, GPUs, nodes.

#include <gtest/gtest.h>

#include "hw/cuda_sim.h"
#include "hw/gpu_device.h"
#include "hw/gpu_spec.h"
#include "hw/node.h"
#include "hw/pcie_link.h"

namespace aegaeon {
namespace {

TEST(StreamSimTest, WorkExecutesInOrder) {
  StreamSim stream("s");
  auto a = stream.Enqueue(0.0, 1.0);
  auto b = stream.Enqueue(0.0, 2.0);  // submitted at 0 but queued behind a
  EXPECT_DOUBLE_EQ(a.start, 0.0);
  EXPECT_DOUBLE_EQ(a.end, 1.0);
  EXPECT_DOUBLE_EQ(b.start, 1.0);
  EXPECT_DOUBLE_EQ(b.end, 3.0);
  EXPECT_DOUBLE_EQ(stream.horizon(), 3.0);
  EXPECT_DOUBLE_EQ(stream.busy_time(), 3.0);
}

TEST(StreamSimTest, IdleGapWhenSubmittedLate) {
  StreamSim stream("s");
  stream.Enqueue(0.0, 1.0);
  auto span = stream.Enqueue(5.0, 1.0);
  EXPECT_DOUBLE_EQ(span.start, 5.0);
  EXPECT_DOUBLE_EQ(stream.busy_time(), 2.0);  // the gap is not busy
}

TEST(EventSimTest, RecordCapturesHorizonAndQueryCompares) {
  StreamSim stream("s");
  stream.Enqueue(0.0, 2.0);
  EventSim event = stream.Record();
  EXPECT_FALSE(event.Query(1.0));
  EXPECT_TRUE(event.Query(2.0));
  // Work enqueued after the record is not captured.
  stream.Enqueue(2.0, 5.0);
  EXPECT_TRUE(event.Query(2.0));
  EXPECT_DOUBLE_EQ(event.complete_at(), 2.0);
}

TEST(EventSimTest, DefaultEventIsComplete) {
  EventSim event;
  EXPECT_TRUE(event.Query(0.0));
}

TEST(EventSimTest, IpcHandleIsEquivalentCopy) {
  StreamSim stream("s");
  stream.Enqueue(0.0, 3.0);
  EventSim event = stream.Record();
  EventSim handle = event.IpcHandle();
  EXPECT_DOUBLE_EQ(handle.complete_at(), event.complete_at());
}

TEST(StreamSimTest, WaitEventDefersFutureWork) {
  StreamSim producer("p");
  StreamSim consumer("c");
  producer.Enqueue(0.0, 4.0);
  EventSim done = producer.Record();
  consumer.WaitEvent(done);  // cudaStreamWaitEvent
  auto span = consumer.Enqueue(0.0, 1.0);
  EXPECT_DOUBLE_EQ(span.start, 4.0);
  EXPECT_DOUBLE_EQ(span.end, 5.0);
}

TEST(PcieLinkTest, SameDirectionSerializes) {
  PcieLink link(10e9, 1.0);
  auto a = link.Transfer(0.0, 10e9, CopyDir::kHostToDevice, 1.0);
  auto b = link.Transfer(0.0, 10e9, CopyDir::kHostToDevice, 1.0);
  EXPECT_DOUBLE_EQ(a.end, 1.0);
  EXPECT_DOUBLE_EQ(b.start, 1.0);
  EXPECT_DOUBLE_EQ(b.end, 2.0);
}

TEST(PcieLinkTest, DirectionsAreFullDuplex) {
  PcieLink link(10e9, 1.0);
  auto h2d = link.Transfer(0.0, 10e9, CopyDir::kHostToDevice, 1.0);
  auto d2h = link.Transfer(0.0, 10e9, CopyDir::kDeviceToHost, 1.0);
  EXPECT_DOUBLE_EQ(h2d.start, 0.0);
  EXPECT_DOUBLE_EQ(d2h.start, 0.0);
}

TEST(PcieLinkTest, EffectiveFractionScalesDuration) {
  PcieLink link(32e9, 0.625);
  auto slow = link.Transfer(0.0, 32e9, CopyDir::kHostToDevice, 0.5);
  EXPECT_DOUBLE_EQ(slow.end - slow.start, 2.0);
  EXPECT_DOUBLE_EQ(link.OptimizedDuration(20e9), 1.0);  // 20 GB at 20 GB/s
}

TEST(PcieLinkTest, ReadyAfterGatesStart) {
  PcieLink link(10e9, 1.0);
  auto span = link.Transfer(0.0, 10e9, CopyDir::kHostToDevice, 1.0, /*ready_after=*/3.0);
  EXPECT_DOUBLE_EQ(span.start, 3.0);
}

TEST(GpuDeviceTest, CopyOccupiesStreamAndLink) {
  GpuDevice gpu(0, GpuSpec::H800());
  // Two copies on different streams share the H2D link direction.
  auto a = gpu.EnqueueOptimizedCopy(gpu.compute_stream(), 0.0, 40e9, CopyDir::kHostToDevice);
  auto b = gpu.EnqueueOptimizedCopy(gpu.prefetch_stream(), 0.0, 40e9, CopyDir::kHostToDevice);
  EXPECT_GE(b.start, a.end);  // serialized by the link
  EXPECT_DOUBLE_EQ(gpu.compute_stream().horizon(), a.end);
  EXPECT_DOUBLE_EQ(gpu.prefetch_stream().horizon(), b.end);
}

TEST(GpuDeviceTest, OppositeDirectionsOverlap) {
  GpuDevice gpu(0, GpuSpec::H800());
  auto in = gpu.EnqueueOptimizedCopy(gpu.kv_in_stream(), 0.0, 40e9, CopyDir::kHostToDevice);
  auto out = gpu.EnqueueOptimizedCopy(gpu.kv_out_stream(), 0.0, 40e9, CopyDir::kDeviceToHost);
  EXPECT_DOUBLE_EQ(in.start, 0.0);
  EXPECT_DOUBLE_EQ(out.start, 0.0);
}

TEST(GpuDeviceTest, VramAccounting) {
  GpuDevice gpu(0, GpuSpec::A10());
  double total = gpu.spec().vram_bytes;
  EXPECT_TRUE(gpu.AllocVram(total / 2));
  EXPECT_TRUE(gpu.AllocVram(total / 2));
  EXPECT_FALSE(gpu.AllocVram(1.0));
  EXPECT_DOUBLE_EQ(gpu.vram_free(), 0.0);
  gpu.FreeVram(total / 4);
  EXPECT_DOUBLE_EQ(gpu.vram_used(), total * 0.75);
  EXPECT_DOUBLE_EQ(gpu.vram_peak(), total);
}

TEST(NodeTest, BuildsGpusWithSequentialIds) {
  Node node(4, GpuSpec::H800(), 100.0 * kGiB, /*first_gpu_id=*/8);
  EXPECT_EQ(node.gpu_count(), 4);
  EXPECT_EQ(node.gpu(0).id(), 8u);
  EXPECT_EQ(node.gpu(3).id(), 11u);
}

TEST(NodeTest, DramAccounting) {
  Node node(1, GpuSpec::H800(), 10.0 * kGiB);
  EXPECT_TRUE(node.AllocDram(6.0 * kGiB));
  EXPECT_FALSE(node.AllocDram(6.0 * kGiB));
  node.FreeDram(3.0 * kGiB);
  EXPECT_TRUE(node.AllocDram(6.0 * kGiB));
  EXPECT_NEAR(node.dram_free(), 1.0 * kGiB, 1.0);
}

TEST(GpuSpecTest, PresetsHaveSensibleDerivedRates) {
  for (const GpuSpec& spec :
       {GpuSpec::H800(), GpuSpec::H20(), GpuSpec::A10(), GpuSpec::A100()}) {
    EXPECT_GT(spec.effective_flops(), 0.0) << spec.name;
    EXPECT_LT(spec.effective_flops(), spec.peak_fp16_flops) << spec.name;
    EXPECT_LT(spec.effective_hbm(), spec.hbm_bytes_per_s) << spec.name;
    EXPECT_LT(spec.effective_pcie(), spec.pcie_bytes_per_s) << spec.name;
  }
}

}  // namespace
}  // namespace aegaeon
