// Tests for workload synthesis: datasets, Poisson/Zipf generators, bursts.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "model/registry.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace aegaeon {
namespace {

TEST(DatasetTest, SampleWithinClamps) {
  Dataset dataset = Dataset::ShareGpt();
  Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    LengthSample sample = dataset.Sample(rng);
    EXPECT_GE(sample.prompt_tokens, Dataset::kMinLen);
    EXPECT_LE(sample.prompt_tokens, Dataset::kMaxPrompt);
    EXPECT_GE(sample.output_tokens, Dataset::kMinLen);
    EXPECT_LE(sample.output_tokens, Dataset::kMaxOutput);
  }
}

TEST(DatasetTest, EmpiricalMeansTrackConfiguredMeans) {
  Dataset dataset = Dataset::ShareGpt();
  Rng rng(7);
  double prompt_sum = 0.0;
  double output_sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    LengthSample sample = dataset.Sample(rng);
    prompt_sum += static_cast<double>(sample.prompt_tokens);
    output_sum += static_cast<double>(sample.output_tokens);
  }
  // Clamping trims the upper tail slightly, so allow ~10%.
  EXPECT_NEAR(prompt_sum / n, dataset.MeanPrompt(), dataset.MeanPrompt() * 0.10);
  EXPECT_NEAR(output_sum / n, dataset.MeanOutput(), dataset.MeanOutput() * 0.10);
  // Published ShareGPT ballpark: ~160 in, ~290 out.
  EXPECT_NEAR(dataset.MeanPrompt(), 165.0, 25.0);
  EXPECT_NEAR(dataset.MeanOutput(), 286.0, 40.0);
}

TEST(DatasetTest, ScaledVariantsScaleMeans) {
  Dataset base = Dataset::ShareGpt();
  Dataset ix2 = Dataset::ShareGptIx2();
  Dataset ox2 = Dataset::ShareGptOx2();
  EXPECT_NEAR(ix2.MeanPrompt(), 2.0 * base.MeanPrompt(), 1e-9);
  EXPECT_NEAR(ix2.MeanOutput(), base.MeanOutput(), 1e-9);
  EXPECT_NEAR(ox2.MeanOutput(), 2.0 * base.MeanOutput(), 1e-9);
  EXPECT_NEAR(ox2.MeanPrompt(), base.MeanPrompt(), 1e-9);
}

TEST(GeneratorTest, PoissonWorkloadSortedAndRateCorrect) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(10);
  auto events = GeneratePoisson(registry, 0.2, 5000.0, Dataset::ShareGpt(), 3);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const ArrivalEvent& a, const ArrivalEvent& b) {
                               return a.time < b.time;
                             }));
  // 10 models x 0.2 rps x 5000 s = 10000 expected.
  EXPECT_NEAR(static_cast<double>(events.size()), 10000.0, 300.0);
  auto counts = CountPerModel(events, registry.size());
  for (uint64_t c : counts) {
    EXPECT_NEAR(static_cast<double>(c), 1000.0, 120.0);
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(5);
  auto a = GeneratePoisson(registry, 0.1, 500.0, Dataset::ShareGpt(), 99);
  auto b = GeneratePoisson(registry, 0.1, 500.0, Dataset::ShareGpt(), 99);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
  }
}

TEST(GeneratorTest, SkewedWorkloadHasHeavyTail) {
  // Figure 1(a): the bottom ~94% of models receive only a sliver of
  // requests under a Zipf popularity.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(100);
  auto events = GenerateSkewed(registry, 50.0, 1.8, 2000.0, Dataset::ShareGpt(), 11);
  auto counts = CountPerModel(events, registry.size());
  std::vector<uint64_t> sorted(counts);
  std::sort(sorted.rbegin(), sorted.rend());
  uint64_t total = std::accumulate(sorted.begin(), sorted.end(), uint64_t{0});
  uint64_t top6 = std::accumulate(sorted.begin(), sorted.begin() + 6, uint64_t{0});
  // The top 6% of models take the overwhelming majority of traffic.
  EXPECT_GT(static_cast<double>(top6) / total, 0.80);
}

TEST(GeneratorTest, BurstRaisesLocalRate) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(1);
  auto events = GeneratePoisson(registry, 1.0, 600.0, Dataset::ShareGpt(), 4);
  AddBurst(events, registry, 0, /*burst_rps=*/20.0, /*start=*/200.0, /*length=*/100.0,
           Dataset::ShareGpt(), 5);
  auto series = RateSeries(events, 600.0, 10.0);
  // Rate inside the burst window far exceeds the base rate outside it.
  double in_burst = series[25];   // t = 250 s
  double outside = series[5];     // t = 50 s
  EXPECT_GT(in_burst, outside + 10.0);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const ArrivalEvent& a, const ArrivalEvent& b) {
                               return a.time < b.time;
                             }));
}

TEST(GeneratorTest, BurstyDeterministicForSeed) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(6);
  auto a = GenerateBursty(registry, 0.2, 8.0, 60.0, 15.0, 800.0, Dataset::ShareGpt(), 42);
  auto b = GenerateBursty(registry, 0.2, 8.0, 60.0, 15.0, 800.0, Dataset::ShareGpt(), 42);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_FALSE(a.empty());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].prompt_tokens, b[i].prompt_tokens);
    EXPECT_EQ(a[i].output_tokens, b[i].output_tokens);
  }
  // A different seed produces a different trace.
  auto c = GenerateBursty(registry, 0.2, 8.0, 60.0, 15.0, 800.0, Dataset::ShareGpt(), 43);
  bool differs = c.size() != a.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].time != c[i].time || a[i].model != c[i].model;
  }
  EXPECT_TRUE(differs);
}

TEST(GeneratorTest, BurstySortedAndMeanRateMatchesMmpp) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(8);
  const double base = 0.25, mult = 6.0, calm = 80.0, burst = 20.0, horizon = 20000.0;
  auto events = GenerateBursty(registry, base, mult, calm, burst, horizon,
                               Dataset::ShareGpt(), 9);
  EXPECT_TRUE(std::is_sorted(events.begin(), events.end(),
                             [](const ArrivalEvent& a, const ArrivalEvent& b) {
                               return a.time < b.time;
                             }));
  // Stationary MMPP mean: base * (calm + mult*burst) / (calm + burst) per
  // model. Over 8 models x 20000 s this is a long-run average; allow 10%.
  double mean_rate = base * (calm + mult * burst) / (calm + burst);
  double expected = mean_rate * horizon * static_cast<double>(registry.size());
  EXPECT_NEAR(static_cast<double>(events.size()), expected, expected * 0.10);
}

TEST(GeneratorTest, BurstyIsBurstierThanPoisson) {
  // The index of dispersion (var/mean of per-bucket counts) is ~1 for a
  // Poisson process and >1 for an MMPP with the same mean rate.
  ModelRegistry registry = ModelRegistry::MidSizeMarket(1);
  const double base = 0.5, mult = 10.0, calm = 90.0, burst = 30.0, horizon = 30000.0;
  auto bursty = GenerateBursty(registry, base, mult, calm, burst, horizon,
                               Dataset::ShareGpt(), 17);
  double mean_rate = base * (calm + mult * burst) / (calm + burst);
  auto poisson = GeneratePoisson(registry, mean_rate, horizon, Dataset::ShareGpt(), 17);
  auto dispersion = [&](const std::vector<ArrivalEvent>& events) {
    auto series = RateSeries(events, horizon, 10.0);
    std::vector<double> counts;
    counts.reserve(series.size());
    for (double r : series) counts.push_back(r * 10.0);
    double mean = std::accumulate(counts.begin(), counts.end(), 0.0) / counts.size();
    double var = 0.0;
    for (double c : counts) var += (c - mean) * (c - mean);
    var /= counts.size();
    return var / mean;
  };
  EXPECT_GT(dispersion(bursty), 3.0 * dispersion(poisson));
  EXPECT_LT(dispersion(poisson), 2.0);
}

TEST(GeneratorTest, RateSeriesIntegratesToCount) {
  ModelRegistry registry = ModelRegistry::MidSizeMarket(3);
  auto events = GeneratePoisson(registry, 0.5, 300.0, Dataset::ShareGpt(), 21);
  auto series = RateSeries(events, 300.0, 5.0);
  double integrated = 0.0;
  for (double r : series) {
    integrated += r * 5.0;
  }
  EXPECT_NEAR(integrated, static_cast<double>(events.size()), 1.0);
}

}  // namespace
}  // namespace aegaeon
